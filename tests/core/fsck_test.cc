// fsck + rebalancer: the operational tooling around DUFS's split-brain
// failure modes (metadata in the coordination service, data on back-ends).
#include "core/fsck.h"

#include <gtest/gtest.h>

#include "core/rebalancer.h"
#include "mdtest/testbed.h"
#include "sim/task.h"
#include "testutil/co_assert.h"

namespace dufs::core {
namespace {

using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

struct FsckFixture {
  Testbed tb;
  explicit FsckFixture(std::size_t backends = 2)
      : tb([backends] {
          TestbedConfig config;
          config.zk_servers = 3;
          config.client_nodes = 2;
          config.backend = BackendKind::kMemFs;
          config.backend_instances = backends;
          return config;
        }()) {
    tb.MountAll();
  }

  DufsFsck MakeFsck() {
    std::vector<vfs::FileSystem*> backends;
    for (auto& m : tb.client(0).backend_mounts) backends.push_back(m.get());
    return DufsFsck(*tb.client(0).dufs, *tb.client(0).zk,
                    std::move(backends));
  }
};

TEST(FsckTest, CleanVolumeReportsClean) {
  FsckFixture f;
  sim::RunTask(f.tb.sim(), [](FsckFixture& fx) -> sim::Task<void> {
    auto& fs = *fx.tb.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    CO_ASSERT_TRUE((co_await fs.Create("/d/f1", 0644)).ok());
    CO_ASSERT_TRUE((co_await fs.Create("/f2", 0644)).ok());
    CO_ASSERT_OK(co_await fs.Symlink("/d/f1", "/link"));

    auto fsck = fx.MakeFsck();
    auto report = co_await fsck.Check();
    CO_ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    EXPECT_EQ(report->files, 2u);
    EXPECT_EQ(report->symlinks, 1u);
    EXPECT_EQ(report->physical_files, 2u);
    EXPECT_GE(report->directories, 2u);  // "/" + /d
  }(f));
}

TEST(FsckTest, DetectsDanglingZnode) {
  FsckFixture f;
  sim::RunTask(f.tb.sim(), [](FsckFixture& fx) -> sim::Task<void> {
    auto& fs = *fx.tb.client(0).dufs;
    CO_ASSERT_TRUE((co_await fs.Create("/doomed", 0644)).ok());
    // Simulate a lost physical file: remove it behind DUFS's back.
    auto attr = co_await fs.GetAttr("/doomed");
    CO_ASSERT_TRUE(attr.ok());
    // Find which backend holds it by scanning both.
    bool removed = false;
    for (auto& mount : fx.tb.client(0).backend_mounts) {
      auto stats = co_await mount->StatFs();
      (void)stats;
    }
    // Direct approach: ask the placement.
    auto& dufs = *fx.tb.client(0).dufs;
    (void)dufs;
    // The file's FID is (client_id, 1): first create from client 0.
    const Fid fid{fx.tb.client(0).dufs->client_id(), 1};
    const auto backend = fx.tb.client(0).dufs->placement().Place(fid);
    CO_ASSERT_OK(co_await fx.tb.client(0).backend_mounts[backend]->Unlink(
        PhysicalPathForFid(fid)));
    removed = true;
    CO_ASSERT_TRUE(removed);

    auto fsck = fx.MakeFsck();
    auto report = co_await fsck.Check();
    CO_ASSERT_TRUE(report.ok());
    CO_ASSERT_EQ(report->dangling.size(), 1u);
    EXPECT_EQ(report->dangling[0], "/doomed");
    EXPECT_TRUE(report->orphans.empty());

    // Repair drops the dangling znode; the name becomes reusable.
    auto repaired = co_await fsck.Repair();
    CO_ASSERT_TRUE(repaired.ok());
    EXPECT_EQ((co_await fs.GetAttr("/doomed")).code(),
              StatusCode::kNotFound);
    CO_ASSERT_TRUE((co_await fs.Create("/doomed", 0644)).ok());
    auto after = co_await fsck.Check();
    CO_ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->clean());
  }(f));
}

TEST(FsckTest, DetectsOrphanedPhysicalFile) {
  FsckFixture f;
  sim::RunTask(f.tb.sim(), [](FsckFixture& fx) -> sim::Task<void> {
    auto& fs = *fx.tb.client(0).dufs;
    CO_ASSERT_TRUE((co_await fs.Create("/kept", 0644)).ok());
    // Fabricate an orphan: a physical file with a FID no znode references.
    const Fid ghost{0xdead, 0xbeef};
    const auto backend = fx.tb.client(0).dufs->placement().Place(ghost);
    auto& mount = *fx.tb.client(0).backend_mounts[backend];
    CO_ASSERT_TRUE(
        (co_await mount.Create(PhysicalPathForFid(ghost), 0644)).ok());

    auto fsck = fx.MakeFsck();
    auto report = co_await fsck.Check();
    CO_ASSERT_TRUE(report.ok());
    CO_ASSERT_EQ(report->orphans.size(), 1u);
    EXPECT_EQ(report->orphans[0].second, PhysicalPathForFid(ghost));
    EXPECT_TRUE(report->dangling.empty());

    auto repaired = co_await fsck.Repair();
    CO_ASSERT_TRUE(repaired.ok());
    EXPECT_EQ((co_await mount.GetAttr(PhysicalPathForFid(ghost))).code(),
              StatusCode::kNotFound);
    // The referenced file survived the repair.
    EXPECT_TRUE((co_await fs.GetAttr("/kept")).ok());
    auto after = co_await fsck.Check();
    EXPECT_TRUE(after->clean());
  }(f));
}

TEST(FsckTest, SurvivesDeepNamespaceChain) {
  // Regression: the namespace walk used to recurse per directory, which
  // overflowed the stack on deep chains (caught under ASan). The iterative
  // walk must handle depths far beyond any sane recursion budget.
  FsckFixture f;
  sim::RunTask(f.tb.sim(), [](FsckFixture& fx) -> sim::Task<void> {
    auto& fs = *fx.tb.client(0).dufs;
    constexpr int kDepth = 512;
    std::string path;
    for (int i = 0; i < kDepth; ++i) {
      path += "/d";
      CO_ASSERT_OK(co_await fs.Mkdir(path, 0755));
    }
    CO_ASSERT_TRUE((co_await fs.Create(path + "/leaf", 0644)).ok());

    auto fsck = fx.MakeFsck();
    auto report = co_await fsck.Check();
    CO_ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    EXPECT_EQ(report->directories, static_cast<std::uint64_t>(kDepth) + 1);
    EXPECT_EQ(report->files, 1u);
  }(f));
}

TEST(RebalancerTest, MovesOnlyAffectedFilesAndPreservesData) {
  FsckFixture f(/*backends=*/3);
  sim::RunTask(f.tb.sim(), [](FsckFixture& fx) -> sim::Task<void> {
    auto& fs = *fx.tb.client(0).dufs;
    constexpr int kFiles = 60;
    for (int i = 0; i < kFiles; ++i) {
      const std::string path = "/f" + std::to_string(i);
      CO_ASSERT_TRUE((co_await fs.Create(path, 0644)).ok());
      auto h = co_await fs.Open(path, vfs::kWrite);
      CO_ASSERT_TRUE(h.ok());
      (void)co_await fs.Write(*h, 0, vfs::ToBytes("payload-" +
                                                  std::to_string(i)));
      (void)co_await fs.Release(*h);
    }

    // Grow the pool model 3 -> ... here: relocate under a different policy
    // (mod-3 -> consistent hashing over the same 3 back-ends).
    Md5ModNPlacement old_policy(3);
    ConsistentHashPlacement new_policy(3);
    std::vector<vfs::FileSystem*> backends;
    for (auto& m : fx.tb.client(0).backend_mounts) backends.push_back(m.get());
    Rebalancer rebalancer(*fx.tb.client(0).zk, backends, old_policy,
                          new_policy);
    auto stats = co_await rebalancer.Run();
    CO_ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->files_scanned, static_cast<std::uint64_t>(kFiles));
    EXPECT_GT(stats->files_moved, 0u);
    EXPECT_LT(stats->files_moved, static_cast<std::uint64_t>(kFiles));
    EXPECT_EQ(stats->errors, 0u);

    // After swapping the live policy, every file reads back intact.
    // (Swap by re-running placement inside DufsClient is config-time; here
    // we verify physical placement agrees with the new policy.)
    for (int i = 0; i < kFiles; ++i) {
      const Fid fid{fx.tb.client(0).dufs->client_id(),
                    static_cast<std::uint64_t>(i + 1)};
      const auto where = new_policy.Place(fid);
      auto attr =
          co_await backends[where]->GetAttr(PhysicalPathForFid(fid));
      EXPECT_TRUE(attr.ok()) << i;
      auto h = co_await backends[where]->Open(PhysicalPathForFid(fid),
                                              vfs::kRead);
      CO_ASSERT_TRUE(h.ok());
      auto data = co_await backends[where]->Read(*h, 0, 64);
      EXPECT_EQ(vfs::FromBytes(*data), "payload-" + std::to_string(i)) << i;
      (void)co_await backends[where]->Release(*h);
    }
  }(f));
}

TEST(RebalancerTest, NoopWhenPoliciesAgree) {
  FsckFixture f;
  sim::RunTask(f.tb.sim(), [](FsckFixture& fx) -> sim::Task<void> {
    auto& fs = *fx.tb.client(0).dufs;
    for (int i = 0; i < 10; ++i) {
      CO_ASSERT_TRUE(
          (co_await fs.Create("/n" + std::to_string(i), 0644)).ok());
    }
    Md5ModNPlacement policy_a(2), policy_b(2);
    std::vector<vfs::FileSystem*> backends;
    for (auto& m : fx.tb.client(0).backend_mounts) backends.push_back(m.get());
    Rebalancer rebalancer(*fx.tb.client(0).zk, backends, policy_a, policy_b);
    auto stats = co_await rebalancer.Run();
    CO_ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->files_moved, 0u);
    EXPECT_EQ(stats->files_scanned, 10u);
  }(f));
}

}  // namespace
}  // namespace dufs::core
