// Full-stack DUFS integration tests: DufsClient over a replicated ZooKeeper
// ensemble and real back-end filesystem instances, via the Testbed.
#include "core/dufs_client.h"

#include <gtest/gtest.h>

#include "core/meta_schema.h"
#include "mdtest/testbed.h"
#include "sim/task.h"
#include "testutil/co_assert.h"

namespace dufs::core {
namespace {

using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

TestbedConfig SmallConfig(BackendKind backend = BackendKind::kMemFs) {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = backend;
  config.backend_instances = 2;
  return config;
}

TEST(MetaRecordTest, EncodeDecodeRoundTrip) {
  MetaRecord rec = MetaRecord::File(Fid{7, 42}, 0640);
  auto back = MetaRecord::Decode(rec.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, vfs::FileType::kRegular);
  EXPECT_EQ(back->fid, (Fid{7, 42}));
  EXPECT_EQ(back->mode, 0640u);

  MetaRecord link = MetaRecord::Symlink("/elsewhere");
  auto link2 = MetaRecord::Decode(link.Encode());
  ASSERT_TRUE(link2.ok());
  EXPECT_EQ(link2->symlink_target, "/elsewhere");

  MetaRecord dir = MetaRecord::Dir(0711);
  dir.mtime_override = 99;
  auto dir2 = MetaRecord::Decode(dir.Encode());
  ASSERT_TRUE(dir2.ok());
  EXPECT_EQ(dir2->mode, 0711u);
  ASSERT_TRUE(dir2->mtime_override.has_value());
  EXPECT_EQ(*dir2->mtime_override, 99);
  EXPECT_FALSE(dir2->atime_override.has_value());
}

TEST(MetaRecordTest, DecodeGarbageFails) {
  EXPECT_FALSE(MetaRecord::Decode({1, 2, 3}).ok());
}

TEST(DufsTest, MountAssignsUniqueClientIds) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  EXPECT_TRUE(tb.client(0).dufs->mounted());
  EXPECT_TRUE(tb.client(1).dufs->mounted());
  EXPECT_NE(tb.client(0).dufs->client_id(), tb.client(1).dufs->client_id());
  EXPECT_NE(tb.client(0).dufs->client_id(), 0u);
}

TEST(DufsTest, MkdirStatRmdirThroughZooKeeperOnly) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0750));
    auto attr = co_await fs.GetAttr("/d");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_TRUE(attr->IsDir());
    EXPECT_EQ(attr->mode, 0750u);
    CO_ASSERT_OK(co_await fs.Rmdir("/d"));
    EXPECT_EQ((co_await fs.GetAttr("/d")).code(), StatusCode::kNotFound);
  }(tb));
}

TEST(DufsTest, DirectoryOpsVisibleAcrossClients) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    CO_ASSERT_OK(co_await t.client(0).dufs->Mkdir("/shared", 0755));
    // Client 1 (different node, different ZK session server) sees it.
    auto attr = co_await t.client(1).dufs->GetAttr("/shared");
    EXPECT_TRUE(attr.ok());
  }(tb));
}

TEST(DufsTest, FileCreateWriteReadAcrossClients) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs0 = *t.client(0).dufs;
    auto& fs1 = *t.client(1).dufs;
    auto created = co_await fs0.Create("/data.bin", 0644);
    CO_ASSERT_TRUE(created.ok());
    auto h0 = co_await fs0.Open("/data.bin", vfs::kWrite);
    CO_ASSERT_TRUE(h0.ok());
    (void)co_await fs0.Write(*h0, 0, vfs::ToBytes("across clients"));
    CO_ASSERT_OK(co_await fs0.Release(*h0));
    // Client 1 reads the same contents through its own mounts.
    auto h1 = co_await fs1.Open("/data.bin", vfs::kRead);
    CO_ASSERT_TRUE(h1.ok());
    auto data = co_await fs1.Read(*h1, 7, 7);
    CO_ASSERT_TRUE(data.ok());
    EXPECT_EQ(vfs::FromBytes(*data), "clients");
    CO_ASSERT_OK(co_await fs1.Release(*h1));
  }(tb));
}

TEST(DufsTest, FileStatMergesZkAndBackend) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    (void)co_await fs.Create("/f", 0604);
    auto h = co_await fs.Open("/f", vfs::kWrite);
    (void)co_await fs.Write(*h, 0, vfs::ToBytes("12345"));
    (void)co_await fs.Release(*h);
    auto attr = co_await fs.GetAttr("/f");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 5u);        // from the physical file
    EXPECT_EQ(attr->mode, 0604u);     // from the znode record
    EXPECT_TRUE(attr->IsRegular());
  }(tb));
}

TEST(DufsTest, CreateErrors) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    EXPECT_EQ((co_await fs.Create("/no/parent", 0644)).code(),
              StatusCode::kNotFound);
    (void)co_await fs.Create("/dup", 0644);
    EXPECT_EQ((co_await fs.Create("/dup", 0644)).code(),
              StatusCode::kAlreadyExists);
    // Parent must be a directory, not a file.
    EXPECT_EQ((co_await fs.Create("/dup/child", 0644)).code(),
              StatusCode::kNotADirectory);
  }(tb));
}

TEST(DufsTest, UnlinkRemovesZnodeAndPhysicalFile) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    (void)co_await fs.Create("/victim", 0644);
    CO_ASSERT_OK(co_await fs.Unlink("/victim"));
    EXPECT_EQ((co_await fs.GetAttr("/victim")).code(), StatusCode::kNotFound);
    // Re-creating with the same name produces fresh contents (new FID).
    (void)co_await fs.Create("/victim", 0644);
    auto attr = co_await fs.GetAttr("/victim");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 0u);
  }(tb));
}

TEST(DufsTest, RmdirOnlyWhenEmpty) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    (void)co_await fs.Create("/d/f", 0644);
    EXPECT_EQ((co_await fs.Rmdir("/d")).code(), StatusCode::kNotEmpty);
    CO_ASSERT_OK(co_await fs.Unlink("/d/f"));
    CO_ASSERT_OK(co_await fs.Rmdir("/d"));
    EXPECT_EQ((co_await fs.Rmdir("/d")).code(), StatusCode::kNotFound);
    (void)co_await fs.Create("/file", 0644);
    EXPECT_EQ((co_await fs.Rmdir("/file")).code(),
              StatusCode::kNotADirectory);
    EXPECT_EQ((co_await fs.Unlink("/file")).code(), StatusCode::kOk);
  }(tb));
}

TEST(DufsTest, ReadDirListsTypes) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/dir", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/dir/sub", 0755));
    (void)co_await fs.Create("/dir/file", 0644);
    auto entries = co_await fs.ReadDir("/dir");
    CO_ASSERT_TRUE(entries.ok());
    CO_ASSERT_EQ(entries->size(), 2u);
    EXPECT_EQ((*entries)[0].name, "file");
    EXPECT_EQ((*entries)[0].type, vfs::FileType::kRegular);
    EXPECT_EQ((*entries)[1].name, "sub");
    EXPECT_EQ((*entries)[1].type, vfs::FileType::kDirectory);
  }(tb));
}

TEST(DufsTest, RenameFileIsAtomicAndKeepsContents) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    (void)co_await fs.Create("/old", 0644);
    auto h = co_await fs.Open("/old", vfs::kWrite);
    (void)co_await fs.Write(*h, 0, vfs::ToBytes("payload"));
    (void)co_await fs.Release(*h);
    CO_ASSERT_OK(co_await fs.Rename("/old", "/new"));
    EXPECT_EQ((co_await fs.GetAttr("/old")).code(), StatusCode::kNotFound);
    // No physical data moved: contents intact under the new name (§IV-A).
    auto h2 = co_await fs.Open("/new", vfs::kRead);
    CO_ASSERT_TRUE(h2.ok());
    auto data = co_await fs.Read(*h2, 0, 7);
    EXPECT_EQ(vfs::FromBytes(*data), "payload");
    (void)co_await fs.Release(*h2);
  }(tb));
}

TEST(DufsTest, RenameOverwritesFileAndCleansOldContents) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    (void)co_await fs.Create("/src", 0644);
    (void)co_await fs.Create("/dst", 0644);
    CO_ASSERT_OK(co_await fs.Rename("/src", "/dst"));
    EXPECT_EQ((co_await fs.GetAttr("/src")).code(), StatusCode::kNotFound);
    EXPECT_TRUE((co_await fs.GetAttr("/dst")).ok());
  }(tb));
}

TEST(DufsTest, RenameDirectoryMovesSubtree) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/a", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/a/b", 0755));
    (void)co_await fs.Create("/a/b/f", 0644);
    CO_ASSERT_OK(co_await fs.Rename("/a", "/z"));
    EXPECT_TRUE((co_await fs.GetAttr("/z/b/f")).ok());
    EXPECT_EQ((co_await fs.GetAttr("/a")).code(), StatusCode::kNotFound);
    // Other clients observe the move atomically.
    EXPECT_TRUE((co_await t.client(1).dufs->GetAttr("/z/b")).ok());
  }(tb));
}

TEST(DufsTest, RenameHugeDirectoryRefused) {
  auto config = SmallConfig();
  Testbed tb(config);
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/big", 0755));
    for (int i = 0; i < 300; ++i) {
      CO_ASSERT_OK(
          co_await fs.Mkdir("/big/d" + std::to_string(i), 0755));
    }
    // 301 znodes > dir_rename_limit (256): refused, nothing moved.
    EXPECT_EQ((co_await fs.Rename("/big", "/huge")).code(),
              StatusCode::kCrossDevice);
    EXPECT_TRUE((co_await fs.GetAttr("/big/d0")).ok());
    EXPECT_EQ((co_await fs.GetAttr("/huge")).code(), StatusCode::kNotFound);
  }(tb));
}

TEST(DufsTest, ChmodUpdatesRecord) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    (void)co_await fs.Create("/f", 0644);
    CO_ASSERT_OK(co_await fs.Chmod("/f", 0400));
    auto attr = co_await fs.GetAttr("/f");
    EXPECT_EQ(attr->mode, 0400u);
    EXPECT_EQ((co_await fs.Access("/f", 02)).code(),
              StatusCode::kPermissionDenied);
    CO_ASSERT_OK(co_await fs.Access("/f", 04));
  }(tb));
}

TEST(DufsTest, UtimensFilesGoToBackendDirsToZk) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    (void)co_await fs.Create("/f", 0644);
    CO_ASSERT_OK(co_await fs.Utimens("/f", 111, 222));
    auto attr = co_await fs.GetAttr("/f");
    EXPECT_EQ(attr->mtime, 222);
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    CO_ASSERT_OK(co_await fs.Utimens("/d", 333, 444));
    auto dattr = co_await fs.GetAttr("/d");
    EXPECT_EQ(dattr->mtime, 444);
    EXPECT_EQ(dattr->atime, 333);
  }(tb));
}

TEST(DufsTest, SymlinkStoredInZooKeeper) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Symlink("/target", "/link"));
    auto target = co_await t.client(1).dufs->ReadLink("/link");
    CO_ASSERT_TRUE(target.ok());
    EXPECT_EQ(*target, "/target");
    auto attr = co_await fs.GetAttr("/link");
    EXPECT_EQ(attr->type, vfs::FileType::kSymlink);
  }(tb));
}

TEST(DufsTest, TruncateViaFid) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    (void)co_await fs.Create("/t", 0644);
    CO_ASSERT_OK(co_await fs.Truncate("/t", 1024));
    auto attr = co_await fs.GetAttr("/t");
    EXPECT_EQ(attr->size, 1024u);
  }(tb));
}

TEST(DufsTest, FilesSpreadAcrossBackends) {
  Testbed tb(SmallConfig(BackendKind::kMemFs));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    for (int i = 0; i < 40; ++i) {
      CO_ASSERT_TRUE(
          (co_await fs.Create("/f" + std::to_string(i), 0644)).ok());
    }
    // Both back-end mounts should hold a share of the physical files
    // (MD5 placement is fair).
    auto s0 = co_await t.client(0).backend_mounts[0]->StatFs();
    auto s1 = co_await t.client(0).backend_mounts[1]->StatFs();
    CO_ASSERT_TRUE(s0.ok());
    CO_ASSERT_TRUE(s1.ok());
    EXPECT_GT(s0->files, 5u);
    EXPECT_GT(s1->files, 5u);
  }(tb));
}

TEST(DufsTest, WorksOverLustreBackends) {
  Testbed tb(SmallConfig(BackendKind::kLustre));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    auto created = co_await fs.Create("/d/file", 0644);
    CO_ASSERT_TRUE(created.ok());
    auto h = co_await fs.Open("/d/file", vfs::kWrite);
    CO_ASSERT_TRUE(h.ok());
    (void)co_await fs.Write(*h, 0, vfs::ToBytes("on lustre"));
    (void)co_await fs.Release(*h);
    auto attr = co_await fs.GetAttr("/d/file");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 9u);
    CO_ASSERT_OK(co_await fs.Unlink("/d/file"));
    CO_ASSERT_OK(co_await fs.Rmdir("/d"));
  }(tb));
}

TEST(DufsTest, WorksOverPvfsBackends) {
  Testbed tb(SmallConfig(BackendKind::kPvfs));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    auto created = co_await fs.Create("/pf", 0644);
    CO_ASSERT_TRUE(created.ok());
    auto h = co_await fs.Open("/pf", vfs::kWrite);
    CO_ASSERT_TRUE(h.ok());
    (void)co_await fs.Write(*h, 0, vfs::ToBytes("on pvfs"));
    (void)co_await fs.Release(*h);
    auto attr = co_await fs.GetAttr("/pf");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 7u);
  }(tb));
}

TEST(DufsTest, ConcurrentCreatesInOneDirectoryAllSucceedOnce) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  // 2 clients x 20 racing creates of the *same* 20 names: exactly one
  // winner per name (ZooKeeper linearizes), and every file resolves.
  int successes = 0, conflicts = 0;
  sim::RunTask(tb.sim(), [](Testbed& t, int& wins, int& losses)
                             -> sim::Task<void> {
    sim::Barrier done(t.sim(), 3);
    for (std::size_t c = 0; c < 2; ++c) {
      t.sim().Spawn([](Testbed& t2, std::size_t client, int& w, int& l,
                       sim::Barrier b) -> sim::Task<void> {
        for (int i = 0; i < 20; ++i) {
          auto r = co_await t2.client(client).dufs->Create(
              "/race" + std::to_string(i), 0644);
          if (r.ok()) {
            ++w;
          } else if (r.code() == StatusCode::kAlreadyExists) {
            ++l;
          }
        }
        co_await b.Arrive();
      }(t, c, wins, losses, done));
    }
    co_await done.Arrive();
    for (int i = 0; i < 20; ++i) {
      auto attr =
          co_await t.client(0).dufs->GetAttr("/race" + std::to_string(i));
      EXPECT_TRUE(attr.ok()) << i;
    }
  }(tb, successes, conflicts));
  EXPECT_EQ(successes, 20);
  EXPECT_EQ(conflicts, 20);
}

TEST(DufsTest, FidsUniqueAcrossClients) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  // Unique FIDs imply unique physical paths; colliding paths would surface
  // as kAlreadyExists from the backend. Create many files from both clients.
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    for (int i = 0; i < 50; ++i) {
      auto a = co_await t.client(0).dufs->Create("/a" + std::to_string(i),
                                                 0644);
      auto b = co_await t.client(1).dufs->Create("/b" + std::to_string(i),
                                                 0644);
      EXPECT_TRUE(a.ok());
      EXPECT_TRUE(b.ok());
    }
  }(tb));
}

TEST(DufsTest, ClientMemoryBounded) {
  Testbed tb(SmallConfig());
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& dufs = *t.client(0).dufs;
    const auto before = dufs.EstimateMemoryBytes();
    for (int i = 0; i < 400; ++i) {
      CO_ASSERT_OK(co_await dufs.Mkdir("/m" + std::to_string(i), 0755));
    }
    // Directory creations add znodes in ZooKeeper, not client state
    // (Fig. 11: DUFS memory is flat). Allow only cache growth.
    EXPECT_LT(dufs.EstimateMemoryBytes(), before + 16 * 1024);
  }(tb));
  EXPECT_GT(tb.ZkMemoryBytes(), 400u * 300);  // ZK grew instead
}

TEST(DufsTest, SurvivesZkFollowerCrash) {
  auto config = SmallConfig();
  config.zk_servers = 3;
  Testbed tb(config);
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    CO_ASSERT_OK(co_await fs.Mkdir("/before", 0755));
    t.net().node(t.zk_nodes()[2]).Crash();  // a follower
    CO_ASSERT_OK(co_await fs.Mkdir("/after", 0755));
    EXPECT_TRUE((co_await fs.GetAttr("/after")).ok());
  }(tb));
}

TEST(DufsTest, BackendDownFailsFileOpsButNotDirOps) {
  Testbed tb(SmallConfig(BackendKind::kLustre));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& fs = *t.client(0).dufs;
    // Knock out both Lustre MDSes: file creation must fail...
    t.net().node(t.lustre(0)->mds_node()).Crash();
    t.net().node(t.lustre(1)->mds_node()).Crash();
    auto created = co_await fs.Create("/f", 0644);
    EXPECT_FALSE(created.ok());
    // ...but the znode rollback ran, and directory metadata (ZooKeeper
    // only) is unaffected.
    EXPECT_EQ((co_await fs.GetAttr("/f")).code(), StatusCode::kNotFound);
    CO_ASSERT_OK(co_await fs.Mkdir("/dirs-still-work", 0755));
  }(tb));
}

}  // namespace
}  // namespace dufs::core
