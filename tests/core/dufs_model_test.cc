// Model-based property test: a random soup of filesystem operations is
// applied simultaneously to DUFS (full stack: FUSE -> ZooKeeper ensemble ->
// back-ends) and to a plain MemFs oracle. After every operation the two
// must return the same status class, and at the end the visible trees must
// be identical. Parameterized over seeds and back-end kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "mdtest/testbed.h"
#include "sim/task.h"
#include "testutil/co_assert.h"
#include "vfs/memfs.h"

namespace dufs::core {
namespace {

using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

enum class OpKind {
  kMkdir,
  kRmdir,
  kCreate,
  kUnlink,
  kRename,
  kStat,
  kReadDir,
  kChmod,
  kWriteRead,
};

struct SoupParam {
  std::uint64_t seed;
  BackendKind backend;
};

class DufsModelTest : public ::testing::TestWithParam<SoupParam> {};

// Normalizes statuses into comparable classes (message text differs).
StatusCode ClassOf(const Status& s) { return s.code(); }

// All referents live in the test body, which drives the frame to completion.
sim::Task<void> RunSoup(Testbed& tb, vfs::MemFs& oracle, Rng& rng,  // dufs-lint: allow(coro-ref-param)
                        int ops, int* mismatches) {
  auto& dufs = *tb.client(0).dufs;

  // A small closed world of paths keeps collisions frequent.
  std::vector<std::string> names = {"a", "b", "c", "d", "e"};
  auto random_path = [&](int max_depth) {
    std::string path;
    const int depth = 1 + static_cast<int>(rng.NextBelow(
                              static_cast<std::uint64_t>(max_depth)));
    for (int i = 0; i < depth; ++i) {
      path += "/" + names[rng.NextBelow(names.size())];
    }
    return path;
  };

  for (int i = 0; i < ops; ++i) {
    const auto kind = static_cast<OpKind>(rng.NextBelow(9));
    const std::string path = random_path(3);
    Status got = Status::Ok(), want = Status::Ok();
    switch (kind) {
      case OpKind::kMkdir: {
        got = co_await dufs.Mkdir(path, 0755);
        want = co_await oracle.Mkdir(path, 0755);
        break;
      }
      case OpKind::kRmdir: {
        got = co_await dufs.Rmdir(path);
        want = co_await oracle.Rmdir(path);
        break;
      }
      case OpKind::kCreate: {
        got = (co_await dufs.Create(path, 0644)).status();
        want = (co_await oracle.Create(path, 0644)).status();
        break;
      }
      case OpKind::kUnlink: {
        got = co_await dufs.Unlink(path);
        want = co_await oracle.Unlink(path);
        break;
      }
      case OpKind::kRename: {
        const std::string to = random_path(3);
        got = co_await dufs.Rename(path, to);
        want = co_await oracle.Rename(path, to);
        // MemFs replaces an existing directory target if empty; DUFS
        // refuses directory-onto-file etc. identically, but directory
        // renames onto existing dirs may differ in edge semantics:
        // tolerate only identical classes.
        break;
      }
      case OpKind::kStat: {
        auto a = co_await dufs.GetAttr(path);
        auto b = co_await oracle.GetAttr(path);
        got = a.status();
        want = b.status();
        if (a.ok() && b.ok()) {
          EXPECT_EQ(a->type, b->type) << path;
          if (a->IsRegular()) {
            EXPECT_EQ(a->size, b->size) << path;
          }
        }
        break;
      }
      case OpKind::kReadDir: {
        auto a = co_await dufs.ReadDir(path);
        auto b = co_await oracle.ReadDir(path);
        got = a.status();
        want = b.status();
        if (a.ok() && b.ok()) {
          EXPECT_EQ(a->size(), b->size()) << path;
        }
        break;
      }
      case OpKind::kChmod: {
        const vfs::Mode mode = 0400 + (rng.NextBelow(8) << 3);
        got = co_await dufs.Chmod(path, mode);
        want = co_await oracle.Chmod(path, mode);
        break;
      }
      case OpKind::kWriteRead: {
        auto a = co_await dufs.Open(path, vfs::kWrite | vfs::kRead);
        auto b = co_await oracle.Open(path, vfs::kWrite | vfs::kRead);
        got = a.status();
        want = b.status();
        if (a.ok() && b.ok()) {
          const std::string blob = "blob-" + std::to_string(i);
          (void)co_await dufs.Write(*a, 0, vfs::ToBytes(blob));
          (void)co_await oracle.Write(*b, 0, vfs::ToBytes(blob));
          auto da = co_await dufs.Read(*a, 0, 64);
          auto db = co_await oracle.Read(*b, 0, 64);
          EXPECT_EQ(vfs::FromBytes(*da), vfs::FromBytes(*db)) << path;
        }
        if (a.ok()) (void)co_await dufs.Release(*a);
        if (b.ok()) (void)co_await oracle.Release(*b);
        break;
      }
    }
    if (ClassOf(got) != ClassOf(want)) {
      ++*mismatches;
      ADD_FAILURE() << "op " << i << " kind " << static_cast<int>(kind)
                    << " path " << path << ": dufs=" << got
                    << " oracle=" << want;
    }
  }
}

// Recursively compares the visible namespace. `dufs`/`oracle` live in the
// test body, which drives the frame to completion.
sim::Task<void> CompareTrees(core::DufsClient& dufs, vfs::MemFs& oracle,  // dufs-lint: allow(coro-ref-param)
                             std::string path) {
  auto a = co_await dufs.ReadDir(path);
  auto b = co_await oracle.ReadDir(path);
  CO_ASSERT_TRUE(a.ok());
  CO_ASSERT_TRUE(b.ok());
  auto names = [](const std::vector<vfs::DirEntry>& entries) {
    std::map<std::string, vfs::FileType> out;
    for (const auto& e : entries) out.emplace(e.name, e.type);
    return out;
  };
  const auto na = names(*a);
  const auto nb = names(*b);
  EXPECT_EQ(na.size(), nb.size()) << path;
  for (const auto& [name, type] : na) {
    auto it = nb.find(name);
    CO_ASSERT_TRUE(it != nb.end());
    EXPECT_EQ(type, it->second) << path << "/" << name;
    if (type == vfs::FileType::kDirectory) {
      // Hoisted into a named local: GCC 12 mis-lifetimes ?: temporaries
      // passed as coroutine arguments.
      std::string child = path == "/" ? "/" + name : path + "/" + name;
      co_await CompareTrees(dufs, oracle, std::move(child));
    }
  }
}

TEST_P(DufsModelTest, RandomOpSoupMatchesOracle) {
  const auto& param = GetParam();
  TestbedConfig config;
  config.seed = param.seed;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = param.backend;
  config.backend_instances = 2;
  Testbed tb(config);
  tb.MountAll();
  vfs::MemFs oracle(tb.sim(), "oracle");

  Rng rng(param.seed * 7919 + 13);
  int mismatches = 0;
  sim::RunTask(tb.sim(),
               RunSoup(tb, oracle, rng, /*ops=*/250, &mismatches));
  EXPECT_EQ(mismatches, 0);
  sim::RunTask(tb.sim(), CompareTrees(*tb.client(0).dufs, oracle, "/"));
  // A second client must see the identical final tree.
  sim::RunTask(tb.sim(), CompareTrees(*tb.client(1).dufs, oracle, "/"));
}

INSTANTIATE_TEST_SUITE_P(
    Soups, DufsModelTest,
    ::testing::Values(SoupParam{1, BackendKind::kMemFs},
                      SoupParam{2, BackendKind::kMemFs},
                      SoupParam{3, BackendKind::kMemFs},
                      SoupParam{4, BackendKind::kMemFs},
                      SoupParam{5, BackendKind::kLustre},
                      SoupParam{6, BackendKind::kLustre},
                      SoupParam{7, BackendKind::kPvfs},
                      SoupParam{8, BackendKind::kMemFs}),
    [](const auto& info) {
      const char* kind =
          info.param.backend == BackendKind::kMemFs
              ? "memfs"
              : info.param.backend == BackendKind::kLustre ? "lustre"
                                                           : "pvfs";
      return std::string(kind) + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dufs::core
