// Compound metadata ops at the DUFS layer (DESIGN.md §13): cold deep-path
// operations cost exactly one ZooKeeper RPC with compound_ops on (vs O(depth)
// for the FUSE-faithful walk ablation), and every reply seeds the metadata
// cache — prefix positives, first-missing negatives, ReadDirPlus children.
#include "core/dufs_client.h"

#include <gtest/gtest.h>

#include <string>

#include "mdtest/testbed.h"
#include "sim/task.h"
#include "testutil/co_assert.h"

namespace dufs::core {
namespace {

using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

TestbedConfig Config(bool compound_ops) {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 2;
  config.dufs.compound_ops = compound_ops;
  return config;
}

std::string DeepPath(int depth) {
  std::string p;
  for (int i = 1; i <= depth; ++i) p += "/d" + std::to_string(i);
  return p;
}

sim::Task<void> BuildDeepDirs(DufsClient& fs, int depth) {  // dufs-lint: allow(coro-ref-param)
  for (int i = 1; i <= depth; ++i) {
    CO_ASSERT_OK(co_await fs.Mkdir(DeepPath(i), 0755));
  }
}

constexpr int kDepth = 6;

// The headline property: a cold stat of a depth-6 directory is ONE ZooKeeper
// round trip — the server walks the chain, not the client.
TEST(DufsCompoundTest, ColdDeepStatIsOneRpc) {
  Testbed tb(Config(/*compound_ops=*/true));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    co_await BuildDeepDirs(*t.client(0).dufs, kDepth);
    // Client 1 has a fresh cache: nothing under /d1 has been seen.
    auto& zk = *t.client(1).zk;
    const auto before = zk.requests_sent();
    auto attr = co_await t.client(1).dufs->GetAttr(DeepPath(kDepth));
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_TRUE(attr->IsDir());
    EXPECT_EQ(zk.requests_sent() - before, 1u);
  }(tb));
}

// The ablation: with compound_ops off the client resolves dentry-by-dentry
// like the kernel VFS, so the same cold stat costs one RPC per component.
TEST(DufsCompoundTest, ColdDeepStatWalksPerComponentWhenDisabled) {
  Testbed tb(Config(/*compound_ops=*/false));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    co_await BuildDeepDirs(*t.client(0).dufs, kDepth);
    auto& zk = *t.client(1).zk;
    const auto before = zk.requests_sent();
    auto attr = co_await t.client(1).dufs->GetAttr(DeepPath(kDepth));
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(zk.requests_sent() - before, static_cast<std::uint64_t>(kDepth));
  }(tb));
}

// One resolve seeds the whole chain: follow-up stats of the terminal AND of
// every ancestor are cache hits (zero further RPCs).
TEST(DufsCompoundTest, ResolveSeedsPrefixAndTerminal) {
  Testbed tb(Config(/*compound_ops=*/true));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    co_await BuildDeepDirs(*t.client(0).dufs, kDepth);
    auto& fs = *t.client(1).dufs;
    auto& zk = *t.client(1).zk;
    CO_ASSERT_TRUE((co_await fs.GetAttr(DeepPath(kDepth))).ok());
    const auto before = zk.requests_sent();
    for (int i = 1; i <= kDepth; ++i) {
      auto attr = co_await fs.GetAttr(DeepPath(i));
      CO_ASSERT_TRUE(attr.ok());
      EXPECT_TRUE(attr->IsDir());
    }
    EXPECT_EQ(zk.requests_sent() - before, 0u);
  }(tb));
}

// A partial miss seeds a negative entry for the first missing component
// (plus positives for the resolved prefix) — the satellite fix: re-probing
// the missing component or its existing ancestors costs nothing.
TEST(DufsCompoundTest, PartialMissSeedsNegativeComponent) {
  Testbed tb(Config(/*compound_ops=*/true));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    co_await BuildDeepDirs(*t.client(0).dufs, 2);
    auto& fs = *t.client(1).dufs;
    auto& zk = *t.client(1).zk;
    const auto before = zk.requests_sent();
    auto miss = co_await fs.GetAttr("/d1/d2/nope/deeper");
    EXPECT_EQ(miss.code(), StatusCode::kNotFound);
    EXPECT_EQ(zk.requests_sent() - before, 1u);
    // First missing component: negative hit, no RPC.
    const auto after_miss = zk.requests_sent();
    EXPECT_EQ((co_await fs.GetAttr("/d1/d2/nope")).code(),
              StatusCode::kNotFound);
    // Resolved prefix: positive hits, no RPC.
    EXPECT_TRUE((co_await fs.GetAttr("/d1")).ok());
    EXPECT_TRUE((co_await fs.GetAttr("/d1/d2")).ok());
    EXPECT_EQ(zk.requests_sent() - after_miss, 0u);
  }(tb));
}

// ReadDirPlus returns every entry's record in the one reply and seeds the
// cache with them, so the classic readdir-then-stat storm is all hits.
TEST(DufsCompoundTest, ReadDirPlusSeedsChildStats) {
  Testbed tb(Config(/*compound_ops=*/true));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& builder = *t.client(0).dufs;
    CO_ASSERT_OK(co_await builder.Mkdir("/dir", 0755));
    CO_ASSERT_TRUE((co_await builder.Create("/dir/f1", 0644)).ok());
    CO_ASSERT_TRUE((co_await builder.Create("/dir/f2", 0644)).ok());
    CO_ASSERT_OK(co_await builder.Mkdir("/dir/sub", 0755));
    auto& fs = *t.client(1).dufs;
    auto& zk = *t.client(1).zk;
    const auto before = zk.requests_sent();
    auto listing = co_await fs.ReadDir("/dir");
    CO_ASSERT_TRUE(listing.ok());
    EXPECT_EQ(zk.requests_sent() - before, 1u);
    CO_ASSERT_TRUE(listing->size() == 3u);
    EXPECT_EQ((*listing)[0].name, "f1");
    EXPECT_EQ((*listing)[0].type, vfs::FileType::kRegular);
    EXPECT_EQ((*listing)[2].name, "sub");
    EXPECT_EQ((*listing)[2].type, vfs::FileType::kDirectory);
    // The stat storm over the listing: zero further ZooKeeper traffic
    // (file stats still consult the back-end for size, which is not ZK).
    const auto after_list = zk.requests_sent();
    for (const auto& entry : *listing) {
      CO_ASSERT_TRUE((co_await fs.GetAttr("/dir/" + entry.name)).ok());
    }
    EXPECT_EQ(zk.requests_sent() - after_list, 0u);
  }(tb));
}

// Cold deep create folds parent resolution + parent-type check + znode
// create into one replicated op, and the reply seeds terminal + ancestors.
TEST(DufsCompoundTest, ColdDeepCreateIsOneRpcAndSeeds) {
  Testbed tb(Config(/*compound_ops=*/true));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    co_await BuildDeepDirs(*t.client(0).dufs, 3);
    auto& fs = *t.client(1).dufs;
    auto& zk = *t.client(1).zk;
    const auto before = zk.requests_sent();
    auto created = co_await fs.Create("/d1/d2/d3/f", 0644);
    CO_ASSERT_TRUE(created.ok());
    EXPECT_EQ(zk.requests_sent() - before, 1u);
    const auto after_create = zk.requests_sent();
    CO_ASSERT_TRUE((co_await fs.GetAttr("/d1/d2/d3/f")).ok());
    CO_ASSERT_TRUE((co_await fs.GetAttr("/d1/d2")).ok());
    EXPECT_EQ(zk.requests_sent() - after_create, 0u);
    // Missing ancestors / file ancestors surface the POSIX codes without a
    // client-side walk.
    EXPECT_EQ((co_await fs.Create("/d1/nope/x", 0644)).code(),
              StatusCode::kNotFound);
    EXPECT_EQ((co_await fs.Create("/d1/d2/d3/f/x", 0644)).code(),
              StatusCode::kNotADirectory);
  }(tb));
}

// Unlink is a single resolve+delete txn — no lookup round trip, no version
// retry loop — and the reply seeds a negative for the gone terminal.
TEST(DufsCompoundTest, ColdUnlinkIsOneRpcAndSeedsNegative) {
  Testbed tb(Config(/*compound_ops=*/true));
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto& builder = *t.client(0).dufs;
    CO_ASSERT_OK(co_await builder.Mkdir("/dir", 0755));
    CO_ASSERT_TRUE((co_await builder.Create("/dir/f", 0644)).ok());
    auto& fs = *t.client(1).dufs;
    auto& zk = *t.client(1).zk;
    const auto before = zk.requests_sent();
    CO_ASSERT_OK(co_await fs.Unlink("/dir/f"));
    EXPECT_EQ(zk.requests_sent() - before, 1u);
    const auto after = zk.requests_sent();
    EXPECT_EQ((co_await fs.GetAttr("/dir/f")).code(), StatusCode::kNotFound);
    EXPECT_EQ(zk.requests_sent() - after, 0u);
    // Directory terminal keeps the POSIX distinction through the txn.
    EXPECT_EQ((co_await fs.Unlink("/dir")).code(), StatusCode::kIsADirectory);
  }(tb));
}

}  // namespace
}  // namespace dufs::core
