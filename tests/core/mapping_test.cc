#include "core/mapping.h"

#include <gtest/gtest.h>

#include <vector>

namespace dufs::core {
namespace {

std::vector<Fid> MakeFids(std::size_t count) {
  std::vector<Fid> fids;
  fids.reserve(count);
  for (std::size_t c = 1; c <= 4; ++c) {
    for (std::size_t i = 0; i < count / 4; ++i) {
      fids.push_back(Fid{c, i});
    }
  }
  return fids;
}

class PlacementParamTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

// Property (paper §IV-F): the mapping must spread FIDs fairly across all N
// back-ends — within 15% of perfect balance for 40k FIDs.
TEST_P(PlacementParamTest, LoadBalanceIsFair) {
  const auto& [name, n] = GetParam();
  auto policy = MakePlacement(name, n);
  ASSERT_EQ(policy->backend_count(), n);
  std::vector<std::size_t> buckets(n, 0);
  const auto fids = MakeFids(40000);
  for (const auto& fid : fids) {
    const auto b = policy->Place(fid);
    ASSERT_LT(b, n);
    ++buckets[b];
  }
  const double expect = static_cast<double>(fids.size()) / static_cast<double>(n);
  // mod-N is near-perfect; the vnode ring trades some balance for bounded
  // relocation, so it gets a wider band.
  const double tolerance = (name == "md5-mod-n" ? 0.15 : 0.30) * expect;
  for (std::size_t b = 0; b < n; ++b) {
    EXPECT_NEAR(static_cast<double>(buckets[b]), expect, tolerance)
        << name << " backend " << b << "/" << n;
  }
}

// Property: placement is a pure function of the FID (clients never need to
// coordinate placement decisions).
TEST_P(PlacementParamTest, Deterministic) {
  const auto& [name, n] = GetParam();
  auto a = MakePlacement(name, n);
  auto b = MakePlacement(name, n);
  for (const auto& fid : MakeFids(1000)) {
    EXPECT_EQ(a->Place(fid), b->Place(fid));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PlacementParamTest,
    ::testing::Combine(::testing::Values("md5-mod-n", "consistent-hash"),
                       ::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{4}, std::size_t{8},
                                         std::size_t{16})),
    [](const auto& info) {
      return std::get<0>(info.param) == "md5-mod-n"
                 ? "md5_" + std::to_string(std::get<1>(info.param))
                 : "chash_" + std::to_string(std::get<1>(info.param));
    });

double RelocatedFraction(PlacementPolicy& policy, std::size_t from,
                         std::size_t to) {
  const auto fids = MakeFids(20000);
  policy.SetBackendCount(from);
  std::vector<std::uint32_t> before;
  before.reserve(fids.size());
  for (const auto& fid : fids) before.push_back(policy.Place(fid));
  policy.SetBackendCount(to);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < fids.size(); ++i) {
    if (policy.Place(fids[i]) != before[i]) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(fids.size());
}

// The paper's §VII motivation for consistent hashing: adding a back-end to
// mod-N remaps nearly everything; the ring moves only ~1/(N+1).
TEST(PlacementTest, ModNRelocatesAlmostEverything) {
  Md5ModNPlacement policy(4);
  const double moved = RelocatedFraction(policy, 4, 5);
  EXPECT_GT(moved, 0.7);
}

TEST(PlacementTest, ConsistentHashRelocatesBounded) {
  ConsistentHashPlacement policy(4);
  const double moved = RelocatedFraction(policy, 4, 5);
  // Ideal is 1/5 = 0.2; allow vnode variance.
  EXPECT_LT(moved, 0.3);
  EXPECT_GT(moved, 0.1);
}

TEST(PlacementTest, ConsistentHashRemovalOnlyMovesVictims) {
  ConsistentHashPlacement policy(4);
  const auto fids = MakeFids(20000);
  std::vector<std::uint32_t> before;
  for (const auto& fid : fids) before.push_back(policy.Place(fid));
  policy.SetBackendCount(3);  // backend 3 drains
  for (std::size_t i = 0; i < fids.size(); ++i) {
    if (before[i] != 3) {
      EXPECT_EQ(policy.Place(fids[i]), before[i]);
    } else {
      EXPECT_LT(policy.Place(fids[i]), 3u);
    }
  }
}

TEST(PlacementTest, FactoryDefaultsToModN) {
  EXPECT_EQ(MakePlacement("md5-mod-n", 2)->name(), "md5-mod-n");
  EXPECT_EQ(MakePlacement("consistent-hash", 2)->name(), "consistent-hash");
  EXPECT_EQ(MakePlacement("unknown", 2)->name(), "md5-mod-n");
}

}  // namespace
}  // namespace dufs::core
