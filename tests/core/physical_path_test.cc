#include "core/physical_path.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"

namespace dufs::core {
namespace {

TEST(PhysicalPathTest, MatchesPaperLayout) {
  // Paper Fig. 4 (adapted to 128-bit FIDs and a pre-creatable skeleton):
  // trailing hex chars become the directory levels, the leading chars the
  // file name.
  const Fid fid = *Fid::FromHex("0123456789abcdef0123456789abcdef");
  EXPECT_EQ(PhysicalPathForFid(fid), "/f/e/d/0123456789abcdef0123456789abc");
}

TEST(PhysicalPathTest, DirsArePrefixes) {
  const Fid fid{0xdeadbeefcafef00dull, 42};
  const auto dirs = PhysicalDirsForFid(fid);
  ASSERT_EQ(dirs.size(), 3u);
  const auto path = PhysicalPathForFid(fid);
  for (const auto& dir : dirs) {
    EXPECT_EQ(path.substr(0, dir.size()), dir);
  }
  EXPECT_LT(dirs[0].size(), dirs[1].size());
  EXPECT_LT(dirs[1].size(), dirs[2].size());
}

TEST(PhysicalPathTest, RoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const Fid fid{rng.NextU64(), rng.NextU64()};
    auto back = FidFromPhysicalPath(PhysicalPathForFid(fid));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, fid);
  }
}

TEST(PhysicalPathTest, RejectsMalformedPaths) {
  EXPECT_FALSE(FidFromPhysicalPath("").has_value());
  EXPECT_FALSE(FidFromPhysicalPath("/f/e/d").has_value());
  EXPECT_FALSE(FidFromPhysicalPath("/z/z/z/zzzzzzzzzzzzzzzzzzzzzzzzzzzzz")
                   .has_value());
  EXPECT_FALSE(
      FidFromPhysicalPath("f/e/d/0123456789abcdef0123456789abc").has_value());
}

TEST(PhysicalPathTest, InjectiveOnDistinctFids) {
  // Distinct FIDs must land on distinct physical paths (no overwrites).
  std::unordered_set<std::string> seen;
  for (std::uint64_t c = 1; c <= 4; ++c) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE(seen.insert(PhysicalPathForFid(Fid{c, i})).second);
    }
  }
}

TEST(PhysicalPathTest, SequentialFidsSpreadDirectories) {
  // The trailing-char layout must avoid piling sequential creates from one
  // client into one directory (paper §IV-G: "avoid congestion due to file
  // creation at a single directory level").
  std::unordered_set<std::string> leaf_dirs;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    leaf_dirs.insert(PhysicalDirsForFid(Fid{7, i})[2]);
  }
  EXPECT_EQ(leaf_dirs.size(), 4096u);  // all 16^3 leaves hit
}

TEST(PhysicalPathTest, SkeletonCoversAllDirs) {
  const auto skeleton = StaticPhysicalSkeleton();
  EXPECT_EQ(skeleton.size(), 16u + 256u + 4096u);
  std::unordered_set<std::string> dirs(skeleton.begin(), skeleton.end());
  for (std::uint64_t i = 0; i < 300; ++i) {
    for (const auto& dir : PhysicalDirsForFid(Fid{3, i * 977})) {
      EXPECT_TRUE(dirs.count(dir) > 0) << dir;
    }
  }
  // Parents appear before children (safe creation order).
  std::unordered_set<std::string> seen{"/"};
  for (const auto& dir : skeleton) {
    const auto slash = dir.rfind('/');
    const std::string parent = slash == 0 ? "/" : dir.substr(0, slash);
    EXPECT_TRUE(seen.count(parent) > 0) << dir;
    seen.insert(dir);
  }
}

}  // namespace
}  // namespace dufs::core
