#include "pfs/lustre.h"

#include <gtest/gtest.h>

#include "sim/task.h"
#include "testutil/co_assert.h"

namespace dufs::pfs {
namespace {

struct LustreFixture {
  sim::Simulation sim;
  net::Network net{sim};
  LustreInstance lustre{net, "fs0", /*n_oss=*/2};
  net::NodeId client_node = net.AddNode("client");
  net::RpcEndpoint endpoint{net, client_node};
  LustreClient client{endpoint, lustre};

  void Run(sim::Task<void> task) { sim::RunTask(sim, std::move(task)); }
};

TEST(LustreTest, MkdirStatReaddir) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/d/sub", 0700));
    auto attr = co_await fs.GetAttr("/d");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_TRUE(attr->IsDir());
    auto entries = co_await fs.ReadDir("/d");
    CO_ASSERT_TRUE(entries.ok());
    CO_ASSERT_EQ(entries->size(), 1u);
    EXPECT_EQ((*entries)[0].name, "sub");
  }(f.client));
}

TEST(LustreTest, MkdirErrors) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    EXPECT_EQ((co_await fs.Mkdir("/a/b", 0755)).code(),
              StatusCode::kNotFound);
    CO_ASSERT_OK(co_await fs.Mkdir("/a", 0755));
    EXPECT_EQ((co_await fs.Mkdir("/a", 0755)).code(),
              StatusCode::kAlreadyExists);
  }(f.client));
}

TEST(LustreTest, CreateWriteReadThroughOss) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    auto created = co_await fs.Create("/file", 0644);
    CO_ASSERT_TRUE(created.ok());
    auto handle = co_await fs.Open("/file", vfs::kWrite);
    CO_ASSERT_TRUE(handle.ok());
    auto wrote = co_await fs.Write(*handle, 0, vfs::ToBytes("lustre data"));
    CO_ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(*wrote, 11u);
    auto data = co_await fs.Read(*handle, 7, 4);
    CO_ASSERT_TRUE(data.ok());
    EXPECT_EQ(vfs::FromBytes(*data), "data");
    CO_ASSERT_OK(co_await fs.Release(*handle));
    // Size comes from the OSS glimpse.
    auto attr = co_await fs.GetAttr("/file");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 11u);
  }(f.client));
}

TEST(LustreTest, ObjectsSpreadAcrossOss) {
  LustreFixture f;
  f.Run([](LustreFixture& fx) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      auto created = co_await fx.client.Create("/f" + std::to_string(i), 0644);
      CO_ASSERT_TRUE(created.ok());
      auto h = co_await fx.client.Open("/f" + std::to_string(i), vfs::kWrite);
      CO_ASSERT_TRUE(h.ok());
      (void)co_await fx.client.Write(*h, 0, vfs::ToBytes("x"));
      (void)co_await fx.client.Release(*h);
    }
  }(f));
  // Round-robin allocation: both OSS nodes hold objects. (Object stores are
  // internal; verify via the OSS nodes having received traffic.)
  EXPECT_GT(f.net.node(f.lustre.oss_nodes()[0]).messages_received, 0u);
  EXPECT_GT(f.net.node(f.lustre.oss_nodes()[1]).messages_received, 0u);
}

TEST(LustreTest, UnlinkDestroysObject) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/gone", 0644);
    CO_ASSERT_OK(co_await fs.Unlink("/gone"));
    EXPECT_EQ((co_await fs.GetAttr("/gone")).code(), StatusCode::kNotFound);
    EXPECT_EQ((co_await fs.Unlink("/gone")).code(), StatusCode::kNotFound);
  }(f.client));
}

TEST(LustreTest, RenameMovesSubtree) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/a", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/a/b", 0755));
    (void)co_await fs.Create("/a/b/f", 0644);
    CO_ASSERT_OK(co_await fs.Rename("/a", "/z"));
    EXPECT_TRUE((co_await fs.GetAttr("/z/b/f")).ok());
    EXPECT_EQ((co_await fs.GetAttr("/a")).code(), StatusCode::kNotFound);
  }(f.client));
}

TEST(LustreTest, RmdirSemantics) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/d/x", 0755));
    EXPECT_EQ((co_await fs.Rmdir("/d")).code(), StatusCode::kNotEmpty);
    CO_ASSERT_OK(co_await fs.Rmdir("/d/x"));
    CO_ASSERT_OK(co_await fs.Rmdir("/d"));
  }(f.client));
}

TEST(LustreTest, SymlinkAndReadlink) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Symlink("/real", "/link"));
    auto target = co_await fs.ReadLink("/link");
    CO_ASSERT_TRUE(target.ok());
    EXPECT_EQ(*target, "/real");
  }(f.client));
}

TEST(LustreTest, ChmodAndUtimens) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/f", 0644);
    CO_ASSERT_OK(co_await fs.Chmod("/f", 0600));
    auto attr = co_await fs.GetAttr("/f");
    EXPECT_EQ(attr->mode, 0600u);
    CO_ASSERT_OK(co_await fs.Utimens("/f", 123, 456));
    attr = co_await fs.GetAttr("/f");
    EXPECT_EQ(attr->atime, 123);
    EXPECT_EQ(attr->mtime, 456);
  }(f.client));
}

TEST(LustreTest, TruncateViaOss) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/t", 0644);
    CO_ASSERT_OK(co_await fs.Truncate("/t", 4096));
    auto attr = co_await fs.GetAttr("/t");
    EXPECT_EQ(attr->size, 4096u);
  }(f.client));
}

TEST(LustreTest, OpenCreateFlag) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    auto handle = co_await fs.Open("/new", vfs::kWrite | vfs::kCreate);
    CO_ASSERT_TRUE(handle.ok());
    EXPECT_TRUE((co_await fs.GetAttr("/new")).ok());
  }(f.client));
}

TEST(LustreTest, StatFsReportsFiles) {
  LustreFixture f;
  f.Run([](LustreClient& fs) -> sim::Task<void> {
    (void)co_await fs.Mkdir("/d", 0755);
    (void)co_await fs.Create("/d/f", 0644);
    auto stats = co_await fs.StatFs();
    CO_ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->files, 2u);
  }(f.client));
}

// The paper's core claim about native Lustre: per-op latency grows with the
// number of concurrent client processes (DLM overhead), so aggregate
// mutation throughput *drops* at scale.
TEST(LustreTest, ThroughputDegradesWithConcurrency) {
  auto measure = [](int procs) {
    LustreFixture f;
    sim::RunTask(f.sim, [](LustreFixture& fx, int n) -> sim::Task<void> {
      sim::Barrier done(fx.sim, static_cast<std::size_t>(n) + 1);
      for (int p = 0; p < n; ++p) {
        fx.sim.Spawn([](LustreFixture& fx2, int pid,
                        sim::Barrier b) -> sim::Task<void> {
          for (int i = 0; i < 20; ++i) {
            (void)co_await fx2.client.Mkdir(
                "/p" + std::to_string(pid) + "-" + std::to_string(i), 0755);
          }
          co_await b.Arrive();
        }(fx, p, done));
      }
      co_await done.Arrive();
    }(f, procs));
    return static_cast<double>(procs) * 20 /
           (static_cast<double>(f.sim.now()) / sim::kSecond);
  };
  // The paper's measured region: Lustre peaks near 64 procs and declines
  // toward 256 (below ~32 procs the journal commit latency dominates and
  // batching still improves throughput).
  const double rate64 = measure(64);
  const double rate256 = measure(256);
  EXPECT_LT(rate256, rate64 * 0.8);
}

}  // namespace
}  // namespace dufs::pfs
