#include "pfs/pvfs.h"

#include <gtest/gtest.h>

#include "pfs/lustre.h"
#include "sim/task.h"
#include "testutil/co_assert.h"

namespace dufs::pfs {
namespace {

struct PvfsFixture {
  sim::Simulation sim;
  net::Network net{sim};
  PvfsInstance pvfs{net, "pvfs0", /*n_servers=*/2};
  net::NodeId client_node = net.AddNode("client");
  net::RpcEndpoint endpoint{net, client_node};
  PvfsClient client{endpoint, pvfs};

  void Run(sim::Task<void> task) { sim::RunTask(sim, std::move(task)); }
};

TEST(PvfsTest, MkdirStatReaddir) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/d/sub", 0700));
    auto attr = co_await fs.GetAttr("/d");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_TRUE(attr->IsDir());
    auto entries = co_await fs.ReadDir("/d");
    CO_ASSERT_TRUE(entries.ok());
    CO_ASSERT_EQ(entries->size(), 1u);
    EXPECT_EQ((*entries)[0].name, "sub");
    EXPECT_EQ((*entries)[0].type, vfs::FileType::kDirectory);
  }(f.client));
}

TEST(PvfsTest, DeepPathResolution) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    std::string path;
    for (int depth = 0; depth < 5; ++depth) {
      path += "/L" + std::to_string(depth);
      CO_ASSERT_OK(co_await fs.Mkdir(path, 0755));
    }
    auto attr = co_await fs.GetAttr(path);
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_TRUE(attr->IsDir());
    EXPECT_EQ((co_await fs.GetAttr("/L0/L1/ghost")).code(),
              StatusCode::kNotFound);
  }(f.client));
}

TEST(PvfsTest, CreateWriteRead) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    auto created = co_await fs.Create("/file", 0644);
    CO_ASSERT_TRUE(created.ok());
    auto handle = co_await fs.Open("/file", vfs::kWrite);
    CO_ASSERT_TRUE(handle.ok());
    auto wrote = co_await fs.Write(*handle, 0, vfs::ToBytes("pvfs bytes"));
    CO_ASSERT_TRUE(wrote.ok());
    auto data = co_await fs.Read(*handle, 5, 5);
    CO_ASSERT_TRUE(data.ok());
    EXPECT_EQ(vfs::FromBytes(*data), "bytes");
    CO_ASSERT_OK(co_await fs.Release(*handle));
    auto attr = co_await fs.GetAttr("/file");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 10u);
  }(f.client));
}

TEST(PvfsTest, DuplicateCreateFails) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    CO_ASSERT_TRUE((co_await fs.Create("/dup", 0644)).ok());
    EXPECT_EQ((co_await fs.Create("/dup", 0644)).code(),
              StatusCode::kAlreadyExists);
    // Duplicate mkdir rolls back the orphan object.
    CO_ASSERT_OK(co_await fs.Mkdir("/dd", 0755));
    EXPECT_EQ((co_await fs.Mkdir("/dd", 0755)).code(),
              StatusCode::kAlreadyExists);
  }(f.client));
}

TEST(PvfsTest, UnlinkRemovesEverywhere) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/gone", 0644);
    CO_ASSERT_OK(co_await fs.Unlink("/gone"));
    EXPECT_EQ((co_await fs.GetAttr("/gone")).code(), StatusCode::kNotFound);
  }(f.client));
}

TEST(PvfsTest, RmdirSemantics) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/d/x", 0755));
    EXPECT_EQ((co_await fs.Rmdir("/d")).code(), StatusCode::kNotEmpty);
    CO_ASSERT_OK(co_await fs.Rmdir("/d/x"));
    CO_ASSERT_OK(co_await fs.Rmdir("/d"));
    EXPECT_EQ((co_await fs.Rmdir("/d")).code(), StatusCode::kNotFound);
  }(f.client));
}

TEST(PvfsTest, RenameAcrossDirectories) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/a", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/b", 0755));
    (void)co_await fs.Create("/a/f", 0644);
    CO_ASSERT_OK(co_await fs.Rename("/a/f", "/b/g"));
    EXPECT_EQ((co_await fs.GetAttr("/a/f")).code(), StatusCode::kNotFound);
    EXPECT_TRUE((co_await fs.GetAttr("/b/g")).ok());
  }(f.client));
}

TEST(PvfsTest, SymlinkChmodUtimens) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Symlink("/t", "/link"));
    auto target = co_await fs.ReadLink("/link");
    CO_ASSERT_TRUE(target.ok());
    EXPECT_EQ(*target, "/t");

    (void)co_await fs.Create("/f", 0644);
    CO_ASSERT_OK(co_await fs.Chmod("/f", 0600));
    CO_ASSERT_OK(co_await fs.Utimens("/f", 11, 22));
    auto attr = co_await fs.GetAttr("/f");
    EXPECT_EQ(attr->mode, 0600u);
    EXPECT_EQ(attr->mtime, 22);
  }(f.client));
}

TEST(PvfsTest, ObjectsDistributeAcrossServers) {
  PvfsFixture f;
  f.Run([](PvfsClient& fs) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      CO_ASSERT_OK(co_await fs.Mkdir("/d" + std::to_string(i), 0755));
    }
  }(f.client));
  EXPECT_GT(f.net.node(f.pvfs.server_nodes()[0]).messages_received, 0u);
  EXPECT_GT(f.net.node(f.pvfs.server_nodes()[1]).messages_received, 0u);
}

// PVFS metadata mutations pay a synchronous disk write; Lustre group-commits
// its journal. At equal concurrency PVFS must be far slower — this gap is
// the backbone of Fig. 10.
TEST(PvfsTest, MutationThroughputFarBelowLustre) {
  auto measure_pvfs = [] {
    PvfsFixture f;
    sim::RunTask(f.sim, [](PvfsFixture& fx) -> sim::Task<void> {
      sim::Barrier done(fx.sim, 33);
      for (int p = 0; p < 32; ++p) {
        fx.sim.Spawn([](PvfsFixture& fx2, int pid,
                        sim::Barrier b) -> sim::Task<void> {
          for (int i = 0; i < 5; ++i) {
            (void)co_await fx2.client.Mkdir(
                "/p" + std::to_string(pid) + "-" + std::to_string(i), 0755);
          }
          co_await b.Arrive();
        }(fx, p, done));
      }
      co_await done.Arrive();
    }(f));
    return 32.0 * 5 / (static_cast<double>(f.sim.now()) / sim::kSecond);
  };
  auto measure_lustre = [] {
    sim::Simulation sim;
    net::Network net{sim};
    LustreInstance lustre{net, "fs0", 2};
    auto client_node = net.AddNode("client");
    net::RpcEndpoint endpoint{net, client_node};
    LustreClient client{endpoint, lustre};
    sim::RunTask(sim, [](sim::Simulation& s, LustreClient& fs)
                          -> sim::Task<void> {
      sim::Barrier done(s, 33);
      for (int p = 0; p < 32; ++p) {
        s.Spawn([](LustreClient& fs2, int pid,
                   sim::Barrier b) -> sim::Task<void> {
          for (int i = 0; i < 5; ++i) {
            (void)co_await fs2.Mkdir(
                "/p" + std::to_string(pid) + "-" + std::to_string(i), 0755);
          }
          co_await b.Arrive();
        }(fs, p, done));
      }
      co_await done.Arrive();
    }(sim, client));
    return 32.0 * 5 / (static_cast<double>(sim.now()) / sim::kSecond);
  };
  const double pvfs_rate = measure_pvfs();
  const double lustre_rate = measure_lustre();
  EXPECT_LT(pvfs_rate * 4, lustre_rate);
}

}  // namespace
}  // namespace dufs::pfs
