#include "wire/buffer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dufs::wire {
namespace {

TEST(BufferTest, FixedWidthRoundTrip) {
  BufferWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteI64(-42);
  w.WriteBool(true);
  w.WriteBool(false);

  BufferReader r(w.data());
  EXPECT_EQ(*r.ReadU8(), 0xab);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789abcdefull);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_FALSE(*r.ReadBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, VarintBoundaries) {
  BufferWriter w;
  const std::uint64_t values[] = {0,      1,        127,        128,
                                  16383,  16384,    (1ull << 32) - 1,
                                  1ull << 32,       ~0ull};
  for (auto v : values) w.WriteVarint(v);
  BufferReader r(w.data());
  for (auto v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, VarintEncodingIsCompact) {
  BufferWriter w;
  w.WriteVarint(127);
  EXPECT_EQ(w.size(), 1u);
  w.WriteVarint(128);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(BufferTest, StringRoundTrip) {
  BufferWriter w;
  w.WriteString("");
  w.WriteString("hello");
  w.WriteString(std::string(1000, 'z'));
  BufferReader r(w.data());
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString()->size(), 1000u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, BytesRoundTrip) {
  BufferWriter w;
  std::vector<std::uint8_t> blob = {0, 255, 128, 7};
  w.WriteBytes(blob);
  BufferReader r(w.data());
  EXPECT_EQ(*r.ReadBytes(), blob);
}

TEST(BufferTest, ShortReadIsError) {
  BufferWriter w;
  w.WriteU16(7);
  BufferReader r(w.data());
  EXPECT_TRUE(r.ReadU16().ok());
  auto bad = r.ReadU32();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
}

TEST(BufferTest, TruncatedStringIsError) {
  BufferWriter w;
  w.WriteVarint(100);  // claims 100 bytes, provides none
  BufferReader r(w.data());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(BufferTest, TruncatedVarintIsError) {
  std::vector<std::uint8_t> bytes = {0x80, 0x80};  // never terminates
  BufferReader r(bytes);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(BufferTest, OverlongVarintIsError) {
  std::vector<std::uint8_t> bytes(11, 0x80);
  bytes.push_back(0x01);
  BufferReader r(bytes);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(BufferTest, FuzzRoundTrip) {
  // Random sequences of typed fields encoded then decoded must round-trip.
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    BufferWriter w;
    std::vector<std::pair<int, std::uint64_t>> script;
    std::vector<std::string> strings;
    const int fields = 1 + static_cast<int>(rng.NextBelow(20));
    for (int i = 0; i < fields; ++i) {
      const int kind = static_cast<int>(rng.NextBelow(4));
      switch (kind) {
        case 0: {
          const auto v = rng.NextU64();
          w.WriteU64(v);
          script.emplace_back(0, v);
          break;
        }
        case 1: {
          const auto v = rng.NextU64();
          w.WriteVarint(v);
          script.emplace_back(1, v);
          break;
        }
        case 2: {
          std::string s(rng.NextBelow(64), 'a' + static_cast<char>(i % 26));
          w.WriteString(s);
          strings.push_back(s);
          script.emplace_back(2, strings.size() - 1);
          break;
        }
        default: {
          const auto v = rng.NextBelow(2);
          w.WriteBool(v != 0);
          script.emplace_back(3, v);
        }
      }
    }
    BufferReader r(w.data());
    for (auto [kind, v] : script) {
      switch (kind) {
        case 0: EXPECT_EQ(*r.ReadU64(), v); break;
        case 1: EXPECT_EQ(*r.ReadVarint(), v); break;
        case 2: EXPECT_EQ(*r.ReadString(), strings[v]); break;
        default: EXPECT_EQ(*r.ReadBool(), v != 0);
      }
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

}  // namespace
}  // namespace dufs::wire
