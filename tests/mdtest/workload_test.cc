#include "mdtest/workload.h"

#include <gtest/gtest.h>

namespace dufs::mdtest {
namespace {

TestbedConfig SmallConfig(BackendKind backend) {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 4;
  config.backend = backend;
  config.backend_instances = 2;
  return config;
}

TEST(MdtestTest, AllPhasesRunCleanlyOnDufs) {
  Testbed tb(SmallConfig(BackendKind::kLustre));
  tb.MountAll();
  MdtestConfig mc;
  mc.processes = 16;
  mc.items_per_proc = 10;
  MdtestRunner runner(tb, mc);
  auto results = runner.Run(Target::kDufs);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) {
    EXPECT_EQ(r.errors, 0u) << PhaseName(r.phase);
    EXPECT_EQ(r.ops, 160u) << PhaseName(r.phase);
    EXPECT_GT(r.ops_per_sec, 0) << PhaseName(r.phase);
  }
}

TEST(MdtestTest, AllPhasesRunCleanlyOnBaseline) {
  Testbed tb(SmallConfig(BackendKind::kLustre));
  tb.MountAll();
  MdtestConfig mc;
  mc.processes = 16;
  mc.items_per_proc = 10;
  MdtestRunner runner(tb, mc);
  auto results = runner.Run(Target::kBaseline);
  for (const auto& r : results) {
    EXPECT_EQ(r.errors, 0u) << PhaseName(r.phase);
  }
}

TEST(MdtestTest, PhasesComposeCreateThenRemove) {
  Testbed tb(SmallConfig(BackendKind::kMemFs));
  tb.MountAll();
  MdtestConfig mc;
  mc.processes = 8;
  mc.items_per_proc = 5;
  MdtestRunner runner(tb, mc);
  // Running the standard order twice must also be clean: remove phases
  // leave the tree empty for the second round.
  for (int round = 0; round < 2; ++round) {
    auto results = runner.Run(Target::kDufs);
    for (const auto& r : results) {
      EXPECT_EQ(r.errors, 0u) << "round " << round << " "
                              << PhaseName(r.phase);
    }
  }
}

TEST(MdtestTest, StatPhasesAreReadOnly) {
  Testbed tb(SmallConfig(BackendKind::kMemFs));
  tb.MountAll();
  MdtestConfig mc;
  mc.processes = 8;
  mc.items_per_proc = 5;
  MdtestRunner runner(tb, mc);
  (void)runner.Run(Target::kDufs, {Phase::kDirCreate});
  auto stat1 = runner.Run(Target::kDufs, {Phase::kDirStat});
  auto stat2 = runner.Run(Target::kDufs, {Phase::kDirStat});
  EXPECT_EQ(stat1[0].errors, 0u);
  EXPECT_EQ(stat2[0].errors, 0u);
}

TEST(MdtestTest, DufsDirStatFasterThanBaselineAtScale) {
  // The paper's headline direction (Fig. 10c): DUFS directory stats are
  // served by the (here 3-server) coordination service and beat the single
  // Lustre MDS under many client processes.
  Testbed tb(SmallConfig(BackendKind::kLustre));
  tb.MountAll();
  MdtestConfig mc;
  mc.processes = 128;
  mc.items_per_proc = 20;
  MdtestRunner runner(tb, mc);
  (void)runner.Run(Target::kDufs, {Phase::kDirCreate});
  auto dufs = runner.Run(Target::kDufs, {Phase::kDirStat});
  (void)runner.Run(Target::kBaseline, {Phase::kDirCreate});
  auto baseline = runner.Run(Target::kBaseline, {Phase::kDirStat});
  EXPECT_EQ(dufs[0].errors, 0u);
  EXPECT_EQ(baseline[0].errors, 0u);
  EXPECT_GT(dufs[0].ops_per_sec, baseline[0].ops_per_sec);
}

}  // namespace
}  // namespace dufs::mdtest
