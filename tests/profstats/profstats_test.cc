// Unit tests for the profstats library (tools/profstats): folded parsing,
// per-frame aggregation, diff math, the compare gate's per-frame direction
// rules — plus a live round-trip against the profiler's own count-mode
// export (prof::ExportFolded -> ParseFolded must reproduce the sample
// totals the profiler reports).
#include <gtest/gtest.h>

#include <string>

#include "obs/prof.h"
#include "profstats.h"
#include "sim/task.h"

namespace dufs {
namespace {

using profstats::Aggregate;
using profstats::AggregateProfile;
using profstats::CompareOptions;
using profstats::CompareProfiles;
using profstats::CompareResult;
using profstats::Diff;
using profstats::DiffResult;
using profstats::ParseFolded;
using profstats::Profile;

Profile MustParse(const std::string& text) {
  Profile p;
  std::string error;
  EXPECT_TRUE(ParseFolded(text, &p, &error)) << error;
  return p;
}

// Builds an aggregate where each (name, self) pair is one leaf line, so
// shares are easy to reason about in the compare tests.
Aggregate Agg(const std::vector<std::pair<std::string, std::uint64_t>>& v) {
  std::string text;
  for (const auto& [name, self] : v) {
    text += name + " " + std::to_string(self) + "\n";
  }
  Aggregate a;
  AggregateProfile(MustParse(text), &a);
  return a;
}

TEST(ParseFoldedTest, RoundTripsStacksAndCounts) {
  const Profile p = MustParse("a;b;c 10\na 5\nx-y.z;w 1\n");
  ASSERT_EQ(p.stacks.size(), 3u);
  EXPECT_EQ(p.total, 16u);
  EXPECT_EQ(p.stacks[0].frames,
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(p.stacks[0].count, 10u);
  EXPECT_EQ(p.stacks[1].frames, (std::vector<std::string>{"a"}));
  EXPECT_EQ(p.stacks[2].frames, (std::vector<std::string>{"x-y.z", "w"}));
}

TEST(ParseFoldedTest, RejectsMalformedLines) {
  Profile p;
  std::string error;
  EXPECT_FALSE(ParseFolded("no-count-here\n", &p, &error));
  EXPECT_FALSE(ParseFolded("a;b 12junk\n", &p, &error));
  EXPECT_FALSE(ParseFolded("a;;b 3\n", &p, &error));
  EXPECT_TRUE(ParseFolded("", &p, &error));  // empty profile is valid
  EXPECT_EQ(p.total, 0u);
}

TEST(AggregateTest, SelfAndTotalSemantics) {
  Aggregate a;
  AggregateProfile(MustParse("a;b 10\na;b;c 5\na 2\nd;e 3\n"), &a);
  EXPECT_EQ(a.total_samples, 20u);
  ASSERT_EQ(a.frames.size(), 5u);  // sorted: a b c d e
  EXPECT_EQ(a.frames[0].name, "a");
  EXPECT_EQ(a.frames[0].self, 2u);     // leaf only in "a 2"
  EXPECT_EQ(a.frames[0].total, 17u);   // every stack it appears on
  EXPECT_EQ(a.frames[1].name, "b");
  EXPECT_EQ(a.frames[1].self, 10u);
  EXPECT_EQ(a.frames[1].total, 15u);
  EXPECT_EQ(a.frames[3].name, "d");
  EXPECT_EQ(a.frames[3].self, 0u);   // never a leaf
  EXPECT_EQ(a.frames[3].total, 3u);
}

TEST(AggregateTest, RecursiveFrameCountsOncePerStack) {
  Aggregate a;
  AggregateProfile(MustParse("a;a;a 7\n"), &a);
  ASSERT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(a.frames[0].self, 7u);
  EXPECT_EQ(a.frames[0].total, 7u);  // not 21
}

TEST(DiffTest, SharesAndOrdering) {
  DiffResult d;
  Diff(Agg({{"a", 50}, {"b", 50}}), Agg({{"a", 90}, {"c", 10}}), &d);
  EXPECT_EQ(d.old_total, 100u);
  EXPECT_EQ(d.new_total, 100u);
  ASSERT_EQ(d.rows.size(), 3u);
  // |delta|: b -0.5, a +0.4, c +0.1.
  EXPECT_EQ(d.rows[0].name, "b");
  EXPECT_DOUBLE_EQ(d.rows[0].delta, -0.5);
  EXPECT_EQ(d.rows[1].name, "a");
  EXPECT_DOUBLE_EQ(d.rows[1].old_share, 0.5);
  EXPECT_DOUBLE_EQ(d.rows[1].new_share, 0.9);
  EXPECT_EQ(d.rows[2].name, "c");
  EXPECT_DOUBLE_EQ(d.rows[2].old_share, 0.0);
}

TEST(CompareTest, WithinToleranceIsOk) {
  CompareResult r;
  CompareProfiles(Agg({{"a", 50}, {"b", 50}}), Agg({{"a", 51}, {"b", 49}}),
                  CompareOptions{/*tolerance=*/0.02, /*min_share=*/0.005},
                  &r);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.regressions, 0);
}

TEST(CompareTest, StableFramesRegressOnDriftEitherWay) {
  const CompareOptions opts{/*tolerance=*/0.02, /*min_share=*/0.005};
  CompareResult grew;
  CompareProfiles(Agg({{"a", 50}, {"b", 50}}), Agg({{"a", 60}, {"b", 40}}),
                  opts, &grew);
  EXPECT_FALSE(grew.ok);
  EXPECT_EQ(grew.regressions, 2);  // a grew AND b shrank beyond 2 pts
}

TEST(CompareTest, OverheadFramesOnlyRegressOnGrowth) {
  EXPECT_STREQ(profstats::FrameDirection("engine.wheel"), "lower");
  EXPECT_STREQ(profstats::FrameDirection("unattributed"), "lower");
  EXPECT_STREQ(profstats::FrameDirection("op.create"), "stable");
  const CompareOptions opts{/*tolerance=*/0.02, /*min_share=*/0.005};
  // engine.wheel shrank 10 pts: an improvement, not a regression — but the
  // workload frame absorbing it ("a") moved, and that is flagged.
  CompareResult shrank;
  CompareProfiles(Agg({{"engine.wheel", 20}, {"a", 80}}),
                  Agg({{"engine.wheel", 10}, {"a", 90}}), opts, &shrank);
  EXPECT_EQ(shrank.regressions, 1);
  for (const auto& row : shrank.rows) {
    EXPECT_EQ(row.regressed, row.name == "a") << row.name;
  }
  // The reverse direction — overhead growing — fails on both rows.
  CompareResult regrew;
  CompareProfiles(Agg({{"engine.wheel", 10}, {"a", 90}}),
                  Agg({{"engine.wheel", 20}, {"a", 80}}), opts, &regrew);
  EXPECT_FALSE(regrew.ok);
  EXPECT_EQ(regrew.regressions, 2);
}

TEST(CompareTest, NoiseFramesBelowMinShareAreIgnored) {
  CompareResult r;
  // 0.3% -> 0.4%: a 33% relative jump, but both sides are under min_share.
  CompareProfiles(Agg({{"tiny", 3}, {"a", 997}}),
                  Agg({{"tiny", 4}, {"a", 996}}),
                  CompareOptions{/*tolerance=*/0.0001, /*min_share=*/0.005},
                  &r);
  for (const auto& row : r.rows) {
    if (row.name == "tiny") {
      EXPECT_FALSE(row.regressed);
    }
  }
}

TEST(CompareTest, MarkdownAlwaysListsRegressions) {
  CompareResult r;
  const CompareOptions opts{/*tolerance=*/0.02, /*min_share=*/0.005};
  CompareProfiles(Agg({{"a", 50}, {"b", 50}}), Agg({{"a", 80}, {"b", 20}}),
                  opts, &r);
  // top_k=0 caps the "ok" rows, never the regressed ones.
  const std::string md = profstats::CompareToMarkdown(r, opts, 0);
  EXPECT_NE(md.find("FAIL"), std::string::npos);
  EXPECT_NE(md.find("| REGRESSION | `a` |"), std::string::npos);
  EXPECT_NE(md.find("| REGRESSION | `b` |"), std::string::npos);
}

TEST(RoundTripTest, ParsesTheProfilersOwnExport) {
  prof::Options o;
  o.mode = prof::Options::Mode::kCount;
  o.every = 4;
  std::string error;
  ASSERT_TRUE(prof::Start(o, &error)) << error;
  {
    sim::Simulation s(9);
    sim::CurrentSimulationScope scope(&s);
    s.Spawn([](sim::Simulation* sim) -> sim::Task<void> {
      prof::ProfScope scope2("op.roundtrip", prof::FrameKind::kOpClass);
      for (int i = 0; i < 200; ++i) co_await sim->Delay(3);
    }(&s));
    for (int i = 0; i < 100; ++i) s.ScheduleFn(i % 13, [] {});
    s.Run();
  }
  prof::Stop();
  const prof::Stats st = prof::GetStats();
  const std::string folded = prof::ExportFolded();
  prof::Reset();

  const Profile p = MustParse(folded);
  EXPECT_EQ(p.total, st.samples);  // nothing lost in export or parse
  Aggregate a;
  AggregateProfile(p, &a);
  bool found = false;
  for (const auto& f : a.frames) {
    if (f.name == "op.roundtrip") {
      found = true;
      EXPECT_GT(f.total, 0u);
    }
  }
  EXPECT_TRUE(found) << folded;
}

}  // namespace
}  // namespace dufs
