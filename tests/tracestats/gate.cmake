# End-to-end gate for the trace-analytics pipeline (the acceptance
# criterion of the tracestats tentpole):
#
#   1. run ablation_fastpath once with every export enabled,
#   2. tracestats must reproduce the headline numbers from the exports
#      alone — --check requires each op class's decomposition total to be
#      within 1% of the op.<class>_ns histogram sum,
#   3. running the analyzer twice must produce byte-identical reports,
#   4. --compare of the run's baseline against itself must pass with zero
#      regressions, and
#   5. --compare against a >5%-perturbed baseline must exit 1 and name the
#      perturbed metric.
#
# Invoked by ctest as:
#   cmake -DBENCH=<ablation_fastpath> -DTRACESTATS=<tracestats>
#         -DWORKDIR=<dir> -P gate.cmake

if(NOT DEFINED BENCH OR NOT DEFINED TRACESTATS OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "usage: cmake -DBENCH=... -DTRACESTATS=... -DWORKDIR=... -P gate.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")

# 1. One small observed run; the seed is arbitrary but fixed.
execute_process(
  COMMAND "${BENCH}" --seed=11 --width=8 --files=4 --rounds=2 --procs=8
    --items=4
    --metrics-json=${WORKDIR}/metrics.json
    --trace=${WORKDIR}/trace.json
    --timeline
    --baseline=${WORKDIR}/baseline.json
  OUTPUT_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ablation_fastpath failed with exit code ${rc}")
endif()

# 2+3. Analyze with the 1% cross-check, twice; byte-compare the reports.
foreach(run 1 2)
  execute_process(
    COMMAND "${TRACESTATS}"
      --trace=${WORKDIR}/trace.json
      --metrics=${WORKDIR}/metrics.json
      --check --json --out=${WORKDIR}/report_${run}.json
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "tracestats --check failed (exit ${rc}): the per-op decomposition "
      "does not reproduce the op latency histograms within 1%")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    "${WORKDIR}/report_1.json" "${WORKDIR}/report_2.json"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "tracestats reports differ across identical runs")
endif()

# 4. Self-comparison of the emitted baseline: zero regressions.
execute_process(
  COMMAND "${TRACESTATS}" --compare
    ${WORKDIR}/baseline.json ${WORKDIR}/baseline.json --tolerance=0.05
  OUTPUT_VARIABLE self_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "--compare of a baseline against itself reported regressions:\n"
    "${self_out}")
endif()
if(self_out MATCHES "REGRESSION")
  message(FATAL_ERROR "self-comparison printed a REGRESSION line")
endif()

# 5. Perturb one higher-is-better metric well past the 5% tolerance; the
# gate must fail and the report must name it.
file(READ "${WORKDIR}/baseline.json" base_json)
string(REGEX REPLACE
  "(\"create\\.gc_on\\.ops_per_s\":\\{\"value\":)[^,]*"
  "\\11" perturbed_json "${base_json}")
if(perturbed_json STREQUAL base_json)
  message(FATAL_ERROR
    "perturbation did not apply: create.gc_on.ops_per_s missing from "
    "baseline?\n${base_json}")
endif()
file(WRITE "${WORKDIR}/perturbed.json" "${perturbed_json}")
execute_process(
  COMMAND "${TRACESTATS}" --compare
    ${WORKDIR}/baseline.json ${WORKDIR}/perturbed.json --tolerance=0.05
  OUTPUT_VARIABLE pert_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "--compare against a perturbed baseline exited ${rc}, expected 1:\n"
    "${pert_out}")
endif()
if(NOT pert_out MATCHES "REGRESSION.*create\\.gc_on\\.ops_per_s")
  message(FATAL_ERROR
    "regression report does not name the perturbed metric:\n${pert_out}")
endif()
