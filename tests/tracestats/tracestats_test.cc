// Unit tests for the tracestats analyzer library (tools/tracestats) over
// synthetic trace/metrics/baseline documents shaped exactly like the repo's
// own exporters emit them.
#include <gtest/gtest.h>

#include <string>

#include "analyze.h"
#include "json.h"

namespace dufs::tracestats {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &v, &error)) << error;
  return v;
}

// One stat op, 100us end-to-end, with a zk-rpc [10,60)us, a zk-read
// [20,30)us inside it, and a nic-tx [12,18)us whose first 2us are queue
// wait. Categories must sum exactly to the root duration.
const char kTrace[] = R"({"traceEvents":[
 {"name":"thread_name","ph":"M","pid":1,"tid":1,
  "args":{"name":"client0"}},
 {"name":"stat","cat":"op","ph":"X","ts":0.000,"dur":100.000,"pid":1,
  "tid":1,"args":{"trace":1,"path":"/a"}},
 {"name":"zk-rpc","cat":"zk","ph":"X","ts":10.000,"dur":50.000,"pid":1,
  "tid":1,"args":{"trace":1}},
 {"name":"zk-read","cat":"zk","ph":"X","ts":20.000,"dur":10.000,"pid":1,
  "tid":2,"args":{"trace":1}},
 {"name":"nic-tx","cat":"net","ph":"X","ts":12.000,"dur":6.000,"pid":1,
  "tid":1,"args":{"trace":1,"wait_ns":2000,"bytes":64}}
],"displayTimeUnit":"ns"})";

TEST(JsonTest, ParsesObjectsArraysAndRawNumbers) {
  const JsonValue v = Parse(R"({"a":[1,2.5],"s":"x\ny","neg":-3})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->items.size(), 2u);
  EXPECT_EQ(a->items[0].raw, "1");
  EXPECT_EQ(a->items[1].raw, "2.5");
  EXPECT_EQ(v.GetString("s"), "x\ny");
  EXPECT_EQ(v.GetInt("neg"), -3);
}

TEST(JsonTest, RejectsGarbage) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\":", &v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, MicrosRawToNanosIsExact) {
  // The tracer prints microseconds with exactly three decimals; the parser
  // must reconstruct integer nanoseconds without double rounding.
  const JsonValue v =
      Parse(R"({"a":12.345,"b":0.001,"c":1000000.000,"d":7})");
  EXPECT_EQ(MicrosRawToNanos(*v.Find("a")), 12'345);
  EXPECT_EQ(MicrosRawToNanos(*v.Find("b")), 1);
  EXPECT_EQ(MicrosRawToNanos(*v.Find("c")), 1'000'000'000);
  EXPECT_EQ(MicrosRawToNanos(*v.Find("d")), 7'000);
}

TEST(AnalyzeTest, DecompositionSumsExactlyToRootDuration) {
  const JsonValue trace = Parse(kTrace);
  AnalyzeResult r;
  std::string error;
  ASSERT_TRUE(Analyze(trace, nullptr, 10, 0.01, &r, &error)) << error;
  EXPECT_EQ(r.total_ops, 1u);
  EXPECT_EQ(r.orphan_events, 0u);
  ASSERT_EQ(r.classes.size(), 1u);
  const ClassStats& cs = r.classes[0];
  EXPECT_EQ(cs.op, "stat");
  EXPECT_EQ(cs.total_ns, 100'000);
  // Priority attribution: zk-read > nic wait/wire > zk-rpc > root.
  EXPECT_EQ(cs.ns[static_cast<int>(Category::kClient)], 50'000);
  EXPECT_EQ(cs.ns[static_cast<int>(Category::kRpcWait)], 34'000);
  EXPECT_EQ(cs.ns[static_cast<int>(Category::kNicWait)], 2'000);
  EXPECT_EQ(cs.ns[static_cast<int>(Category::kWire)], 4'000);
  EXPECT_EQ(cs.ns[static_cast<int>(Category::kZkQueue)], 10'000);
  std::int64_t sum = 0;
  for (int c = 0; c < kCategoryCount; ++c) sum += cs.ns[c];
  EXPECT_EQ(sum, cs.total_ns);  // every nanosecond attributed exactly once

  // Critical path: time-ordered merged segments.
  ASSERT_EQ(r.slowest.size(), 1u);
  const OpBreakdown& op = r.slowest[0];
  EXPECT_EQ(op.path, "/a");
  ASSERT_GE(op.segments.size(), 5u);
  EXPECT_EQ(op.segments[0].first, Category::kClient);
  EXPECT_EQ(op.segments[0].second, 10'000);
}

TEST(AnalyzeTest, UntracedEventsAreOrphans) {
  const JsonValue trace = Parse(
      R"({"traceEvents":[
       {"name":"nic-tx","cat":"net","ph":"X","ts":1.000,"dur":2.000,
        "pid":1,"tid":1,"args":{"wait_ns":0}}]})");
  AnalyzeResult r;
  std::string error;
  ASSERT_TRUE(Analyze(trace, nullptr, 10, 0.01, &r, &error)) << error;
  EXPECT_EQ(r.total_ops, 0u);
  EXPECT_EQ(r.orphan_events, 1u);
}

TEST(AnalyzeTest, CrossCheckAgainstHistogramSum) {
  const JsonValue trace = Parse(kTrace);
  // Exact agreement: trace total 100000 ns == histogram sum.
  const JsonValue good = Parse(
      R"({"registry":{"merged":{"hists":{
          "op.stat_ns":{"count":1,"sum":100000}}}}})");
  AnalyzeResult r1;
  std::string error;
  ASSERT_TRUE(Analyze(trace, &good, 10, 0.01, &r1, &error)) << error;
  EXPECT_TRUE(r1.check_ok);
  EXPECT_EQ(r1.classes[0].hist_sum_ns, 100'000);
  EXPECT_EQ(r1.classes[0].hist_count, 1u);

  // An 11% disagreement must fail the 1% check and name the class.
  const JsonValue bad = Parse(
      R"({"registry":{"merged":{"hists":{
          "op.stat_ns":{"count":1,"sum":90000}}}}})");
  AnalyzeResult r2;
  ASSERT_TRUE(Analyze(trace, &bad, 10, 0.01, &r2, &error)) << error;
  EXPECT_FALSE(r2.check_ok);
  ASSERT_EQ(r2.check_messages.size(), 1u);
  EXPECT_NE(r2.check_messages[0].find("stat"), std::string::npos);
}

TEST(AnalyzeTest, OutputIsByteDeterministic) {
  const JsonValue trace = Parse(kTrace);
  AnalyzeResult r1, r2;
  std::string error;
  ASSERT_TRUE(Analyze(trace, nullptr, 10, 0.01, &r1, &error));
  ASSERT_TRUE(Analyze(trace, nullptr, 10, 0.01, &r2, &error));
  EXPECT_EQ(ResultToJson(r1), ResultToJson(r2));
  EXPECT_EQ(ResultToText(r1), ResultToText(r2));
  EXPECT_NE(ResultToJson(r1).find("\"critical_path\""), std::string::npos);
}

TEST(AnalyzeTest, TopKKeepsSlowestInDescendingOrder) {
  const JsonValue trace = Parse(
      R"({"traceEvents":[
       {"name":"stat","cat":"op","ph":"X","ts":0.000,"dur":5.000,
        "pid":1,"tid":1,"args":{"trace":1}},
       {"name":"mkdir","cat":"op","ph":"X","ts":10.000,"dur":50.000,
        "pid":1,"tid":1,"args":{"trace":2}},
       {"name":"stat","cat":"op","ph":"X","ts":70.000,"dur":20.000,
        "pid":1,"tid":1,"args":{"trace":3}}]})");
  AnalyzeResult r;
  std::string error;
  ASSERT_TRUE(Analyze(trace, nullptr, 2, 0.01, &r, &error)) << error;
  EXPECT_EQ(r.total_ops, 3u);
  ASSERT_EQ(r.slowest.size(), 2u);
  EXPECT_EQ(r.slowest[0].op, "mkdir");
  EXPECT_EQ(r.slowest[1].dur_ns, 20'000);
}

// --- baseline comparison --------------------------------------------------

const char kOldBase[] = R"({"bench":"x","schema":1,"metrics":{
  "create.ops_per_s":{"value":1000,"better":"higher"},
  "readdir.us":{"value":50,"better":"lower"}}})";

TEST(CompareTest, IdenticalBaselinesHaveNoRegressions) {
  CompareResult r;
  std::string error;
  ASSERT_TRUE(Compare(Parse(kOldBase), Parse(kOldBase), 0.05, &r, &error))
      << error;
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.lines.size(), 2u);
}

TEST(CompareTest, DropBeyondToleranceRegressesHigherBetter) {
  const JsonValue nw = Parse(R"({"metrics":{
    "create.ops_per_s":{"value":900,"better":"higher"},
    "readdir.us":{"value":50,"better":"lower"}}})");
  CompareResult r;
  std::string error;
  ASSERT_TRUE(Compare(Parse(kOldBase), nw, 0.05, &r, &error)) << error;
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.regressions, 1);
  // The report names the regressed metric on a REGRESSION line.
  bool named = false;
  for (const auto& line : r.lines) {
    if (line.find("REGRESSION") != std::string::npos &&
        line.find("create.ops_per_s") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named);
}

TEST(CompareTest, RiseBeyondToleranceRegressesLowerBetter) {
  const JsonValue nw = Parse(R"({"metrics":{
    "create.ops_per_s":{"value":1000,"better":"higher"},
    "readdir.us":{"value":60,"better":"lower"}}})");
  CompareResult r;
  std::string error;
  ASSERT_TRUE(Compare(Parse(kOldBase), nw, 0.05, &r, &error)) << error;
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.regressions, 1);
}

TEST(CompareTest, WithinToleranceIsOk) {
  const JsonValue nw = Parse(R"({"metrics":{
    "create.ops_per_s":{"value":960,"better":"higher"},
    "readdir.us":{"value":52,"better":"lower"}}})");
  CompareResult r;
  std::string error;
  ASSERT_TRUE(Compare(Parse(kOldBase), nw, 0.05, &r, &error)) << error;
  EXPECT_TRUE(r.ok);
}

TEST(CompareTest, MissingMetricRegressesNewMetricInforms) {
  const JsonValue nw = Parse(R"({"metrics":{
    "create.ops_per_s":{"value":1000,"better":"higher"},
    "brand.new":{"value":1,"better":"higher"}}})");
  CompareResult r;
  std::string error;
  ASSERT_TRUE(Compare(Parse(kOldBase), nw, 0.05, &r, &error)) << error;
  EXPECT_FALSE(r.ok);          // readdir.us vanished
  EXPECT_EQ(r.regressions, 1);
  bool informed = false;
  for (const auto& line : r.lines) {
    if (line.find("brand.new") != std::string::npos &&
        line.find("new metric") != std::string::npos) {
      informed = true;
    }
  }
  EXPECT_TRUE(informed);  // additions inform, never fail
}

TEST(CompareTest, MarkdownCarriesVerdictAndAllLines) {
  const JsonValue nw = Parse(R"({"metrics":{
    "create.ops_per_s":{"value":900,"better":"higher"},
    "readdir.us":{"value":50,"better":"lower"}}})");
  CompareResult r;
  std::string error;
  ASSERT_TRUE(Compare(Parse(kOldBase), nw, 0.05, &r, &error)) << error;
  // The $GITHUB_STEP_SUMMARY rendering: FAIL verdict in the header, every
  // per-metric line inside the fenced block.
  const std::string md = CompareToMarkdown(r, 0.05);
  EXPECT_NE(md.find("### perf-compare gate: FAIL (1 regressions"),
            std::string::npos);
  EXPECT_NE(md.find("```text\n"), std::string::npos);
  for (const auto& line : r.lines) {
    EXPECT_NE(md.find(line), std::string::npos) << line;
  }
  CompareResult clean;
  ASSERT_TRUE(Compare(Parse(kOldBase), Parse(kOldBase), 0.05, &clean, &error));
  EXPECT_NE(CompareToMarkdown(clean, 0.05).find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace dufs::tracestats
