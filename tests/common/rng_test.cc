#include "common/rng.h"

#include <gtest/gtest.h>

namespace dufs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanApproximately) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(100.0);
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 100.0, 2.0);
}

TEST(RngTest, ExponentialZeroMean) {
  Rng rng(11);
  EXPECT_EQ(rng.NextExponential(0.0), 0.0);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  // The child stream must not replay the parent stream.
  Rng parent2(5);
  (void)parent2.NextU64();  // advance like Fork did
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child.NextU64() == parent2.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformityCoarse) {
  Rng rng(13);
  int buckets[8] = {0};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++buckets[rng.NextBelow(8)];
  for (int b = 0; b < 8; ++b) {
    EXPECT_NEAR(buckets[b], kN / 8, kN / 8 / 10) << "bucket " << b;
  }
}

}  // namespace
}  // namespace dufs
