#include "common/status.h"

#include <gtest/gtest.h>

namespace dufs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodeAndMessage) {
  Status s(StatusCode::kNotFound, "no such path /a/b");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such path /a/b");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status(StatusCode::kBusy, "a"), Status(StatusCode::kBusy, "b"));
  EXPECT_FALSE(Status(StatusCode::kBusy) == Status(StatusCode::kIoError));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status().code(), StatusCode::kOk);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status(StatusCode::kTimeout, "rpc");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ImplicitFromCode) {
  Result<std::string> r = StatusCode::kNotFound;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status(StatusCode::kInvalidArgument);
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  DUFS_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(*DoubleIfPositive(4), 8);
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  auto r = DoubleIfPositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dufs
