#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dufs {
namespace {

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  Rng rng(3);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeIntoEmpty) {
  RunningStat a, b;
  b.Add(5.0);
  b.Add(7.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
}

TEST(LatencyHistogramTest, EmptyPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Add(1'000'000);
  EXPECT_EQ(h.count(), 1u);
  // Bucketed value must be within ~25% of the true sample.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 1e6, 0.25e6);
  EXPECT_EQ(h.MaxSample(), 1'000'000);
}

TEST(LatencyHistogramTest, PercentileOrdering) {
  LatencyHistogram h;
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    h.Add(static_cast<std::int64_t>(rng.NextBelow(1'000'000)));
  }
  const auto p50 = h.Percentile(50);
  const auto p90 = h.Percentile(90);
  const auto p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.MaxSample());
  // Uniform distribution: p50 should land near 500k within bucket error.
  EXPECT_NEAR(static_cast<double>(p50), 5e5, 1.5e5);
}

TEST(LatencyHistogramTest, NegativeClampsToZero) {
  LatencyHistogram h;
  h.Add(-5);
  EXPECT_EQ(h.Percentile(100), 0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below the sub-bucket count (4) get one bucket each — exact.
  for (std::int64_t v = 0; v < 4; ++v) {
    LatencyHistogram h;
    h.Add(v);
    EXPECT_EQ(h.Percentile(100), v);
  }
}

TEST(LatencyHistogramTest, BucketBoundariesWithin25Percent) {
  // The log-bucket guarantee: Percentile answers a bucket upper bound that
  // is never below the true sample and at most 25% above it (worst case at
  // the lower edge of a sub-bucket). A second, far larger sample keeps the
  // max-sample clamp from hiding the bucketing.
  for (std::int64_t v :
       {std::int64_t{4}, std::int64_t{5}, std::int64_t{7}, std::int64_t{8},
        std::int64_t{1023}, std::int64_t{1024}, std::int64_t{1025},
        std::int64_t{1'000'000}, std::int64_t{1} << 20,
        (std::int64_t{1} << 20) - 1, std::int64_t{1} << 40}) {
    LatencyHistogram h;
    h.Add(v);
    h.Add(std::int64_t{1} << 45);
    const auto p50 = h.Percentile(50);  // rank 1 of 2 -> v's bucket
    EXPECT_GE(p50, v);
    EXPECT_LE(static_cast<double>(p50), 1.25 * static_cast<double>(v))
        << "v=" << v;
  }
}

TEST(LatencyHistogramTest, MeanRelativeErrorUnder19Percent) {
  // The header's "<= ~19% relative error" claim, pinned over a log-spaced
  // sweep: individual answers may be up to 25% high, the average error over
  // a magnitude sweep stays under 19%.
  double total_err = 0;
  int n = 0;
  for (std::int64_t v = 4; v < (std::int64_t{1} << 40); v += v / 3 + 1) {
    LatencyHistogram h;
    h.Add(v);
    h.Add(std::int64_t{1} << 45);
    const auto p50 = h.Percentile(50);
    total_err += static_cast<double>(p50 - v) / static_cast<double>(v);
    ++n;
  }
  ASSERT_GT(n, 50);
  EXPECT_LT(total_err / n, 0.19);
}

TEST(LatencyHistogramTest, SaturatedSamplesClampToTopBucket) {
  // Samples at or beyond ~2^48 ns land in the final bucket; percentile
  // answers clamp to its upper bound rather than overflowing.
  LatencyHistogram h;
  const std::int64_t huge = std::int64_t{1} << 50;
  h.Add(huge);
  h.Add(huge * 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.MaxSample(), huge * 2);
  const auto p100 = h.Percentile(100);
  EXPECT_GT(p100, 0);
  EXPECT_LE(p100, h.MaxSample());
}

TEST(LatencyHistogramTest, MergeAfterSaturationPreservesCounts) {
  LatencyHistogram a, b;
  a.Add(std::int64_t{1} << 50);  // saturated
  a.Add(100);
  b.Add(std::int64_t{1} << 52);  // saturated, larger max
  b.Add(200);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.MaxSample(), std::int64_t{1} << 52);
  // Low percentiles still resolve the small samples.
  EXPECT_LE(a.Percentile(25), 125);
  // Top percentile answers from the saturated bucket, clamped by max.
  EXPECT_LE(a.Percentile(100), a.MaxSample());
  EXPECT_GE(a.Percentile(100), std::int64_t{1} << 47);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.Add(100);
  b.Add(200);
  b.Add(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.MaxSample(), 300);
}

TEST(FormatNanosTest, AdaptiveUnits) {
  EXPECT_EQ(FormatNanos(12), "12ns");
  EXPECT_EQ(FormatNanos(1'500), "1.50us");
  EXPECT_EQ(FormatNanos(2'310'000), "2.31ms");
  EXPECT_EQ(FormatNanos(3'000'000'000), "3.00s");
}

}  // namespace
}  // namespace dufs
