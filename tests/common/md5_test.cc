#include "common/md5.h"

#include <gtest/gtest.h>

#include <string>

namespace dufs {
namespace {

std::string HexOf(std::string_view input) { return Md5::Hash(input).ToHex(); }

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(HexOf(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(HexOf("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(HexOf("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(HexOf("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(HexOf("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      HexOf("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(HexOf("1234567890123456789012345678901234567890123456789012345678"
                  "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  const std::string data(1000, 'x');
  for (std::size_t chunk : {1u, 3u, 63u, 64u, 65u, 100u, 999u}) {
    Md5 md5;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      md5.Update(data.substr(off, chunk));
    }
    EXPECT_EQ(md5.Finish(), Md5::Hash(data)) << "chunk=" << chunk;
  }
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string data(len, 'q');
    Md5 a;
    a.Update(data);
    Md5 b;
    for (char c : data) b.Update(&c, 1);
    EXPECT_EQ(a.Finish(), b.Finish()) << "len=" << len;
  }
}

TEST(Md5Test, DigestWordAccessors) {
  // d41d8cd98f00b204 e9800998ecf8427e (empty input); bytes are LE within
  // each accessor.
  const Md5Digest d = Md5::Hash("");
  EXPECT_EQ(d.ToHex().substr(0, 16), "d41d8cd98f00b204");
  // Low64 assembles bytes[0..7] little-endian -> 0x04b2008fd98c1dd4.
  EXPECT_EQ(d.Low64(), 0x04b2008fd98c1dd4ull);
  EXPECT_EQ(d.High64(), 0x7e42f8ec980980e9ull);
}

TEST(Md5Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::Hash("fid-0001"), Md5::Hash("fid-0002"));
}

}  // namespace
}  // namespace dufs
