#include "common/fid.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dufs {
namespace {

TEST(FidTest, HexRoundTrip) {
  Fid fid{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string hex = fid.ToHex();
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  auto back = Fid::FromHex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fid);
}

TEST(FidTest, NullFid) {
  Fid fid;
  EXPECT_TRUE(fid.IsNull());
  EXPECT_FALSE((Fid{1, 0}).IsNull());
  EXPECT_FALSE((Fid{0, 1}).IsNull());
}

TEST(FidTest, FromHexRejectsBadInput) {
  EXPECT_FALSE(Fid::FromHex("").has_value());
  EXPECT_FALSE(Fid::FromHex("0123").has_value());
  EXPECT_FALSE(
      Fid::FromHex("0123456789abcdeffedcba987654321g").has_value());
}

TEST(FidTest, OrderingIsClientThenCounter) {
  EXPECT_LT((Fid{1, 99}), (Fid{2, 0}));
  EXPECT_LT((Fid{1, 0}), (Fid{1, 1}));
}

TEST(FidTest, HasherSpreadsSequentialCounters) {
  // The paper's FIDs are (client_id, 0..n) — a hasher that collides on
  // sequential counters would break placement fairness.
  FidHasher hasher;
  std::unordered_set<std::size_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(hasher(Fid{42, i}));
  }
  EXPECT_GT(seen.size(), 9990u);
}

}  // namespace
}  // namespace dufs
