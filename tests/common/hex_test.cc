#include "common/hex.h"

#include <gtest/gtest.h>

namespace dufs {
namespace {

TEST(HexTest, BytesRoundTrip) {
  std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = BytesToHex(bytes);
  EXPECT_EQ(hex, "0001abff7f");
  auto back = HexToBytes(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
}

TEST(HexTest, UppercaseAccepted) {
  auto bytes = HexToBytes("ABCDEF");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(BytesToHex(*bytes), "abcdef");
}

TEST(HexTest, RejectsOddLength) { EXPECT_FALSE(HexToBytes("abc").has_value()); }

TEST(HexTest, RejectsNonHex) { EXPECT_FALSE(HexToBytes("zz").has_value()); }

TEST(HexTest, EmptyIsValid) {
  auto bytes = HexToBytes("");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_TRUE(bytes->empty());
}

TEST(HexTest, U64RoundTrip) {
  for (std::uint64_t v :
       {0ull, 1ull, 0x0123456789abcdefull, ~0ull, 0x8000000000000000ull}) {
    const std::string hex = U64ToHex(v);
    EXPECT_EQ(hex.size(), 16u);
    auto back = HexToU64(hex);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

TEST(HexTest, U64IsMsbFirst) {
  EXPECT_EQ(U64ToHex(0x0123456789abcdefull), "0123456789abcdef");
}

TEST(HexTest, U64RejectsWrongLength) {
  EXPECT_FALSE(HexToU64("123").has_value());
  EXPECT_FALSE(HexToU64("00000000000000000").has_value());
}

}  // namespace
}  // namespace dufs
