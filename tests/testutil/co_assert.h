// Coroutine-safe fatal assertions: gtest's ASSERT_* macros expand to a bare
// `return`, which does not compile inside a coroutine body. These variants
// record the failure and `co_return` instead.
#pragma once

#include <gtest/gtest.h>

#define CO_ASSERT_TRUE(cond)                         \
  do {                                               \
    if (!(cond)) {                                   \
      ADD_FAILURE() << "CO_ASSERT_TRUE(" #cond ")";  \
      co_return;                                     \
    }                                                \
  } while (0)

#define CO_ASSERT_FALSE(cond) CO_ASSERT_TRUE(!(cond))

#define CO_ASSERT_OK(expr)                                                  \
  do {                                                                      \
    auto _st = (expr).status();                                             \
    if (!_st.ok()) {                                                        \
      ADD_FAILURE() << "CO_ASSERT_OK(" #expr "): " << _st.ToString();       \
      co_return;                                                            \
    }                                                                       \
  } while (0)

#define CO_ASSERT_EQ(a, b)                                    \
  do {                                                        \
    EXPECT_EQ(a, b);                                          \
    if (!((a) == (b))) co_return;                             \
  } while (0)
