#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "obs/flight.h"
#include "obs/incident.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace dufs {
namespace {

bool Fired(const obs::Incidents& inc, std::string_view type) {
  for (const auto& a : inc.anomalies()) {
    if (std::string_view(a.type) == type) return true;
  }
  return false;
}

TEST(Log2HistTest, BucketBoundaries) {
  EXPECT_EQ(obs::Log2Hist::BucketFor(-5), 0);
  EXPECT_EQ(obs::Log2Hist::BucketFor(0), 0);
  EXPECT_EQ(obs::Log2Hist::BucketFor(1), 1);
  EXPECT_EQ(obs::Log2Hist::BucketFor(2), 2);
  EXPECT_EQ(obs::Log2Hist::BucketFor(3), 2);
  EXPECT_EQ(obs::Log2Hist::BucketFor(4), 3);
  EXPECT_EQ(obs::Log2Hist::BucketFor(1023), 10);
  EXPECT_EQ(obs::Log2Hist::BucketFor(1024), 11);
  EXPECT_EQ(obs::Log2Hist::UpperBound(0), 0);
  EXPECT_EQ(obs::Log2Hist::UpperBound(2), 3);
  EXPECT_EQ(obs::Log2Hist::UpperBound(10), 1023);
}

TEST(Log2HistTest, QuantileIsBucketUpperBoundClampedToMax) {
  obs::Log2Hist h;
  for (int i = 0; i < 99; ++i) h.Record(10);  // bucket 4, ub 15
  h.Record(1000);                             // bucket 10, ub 1023
  EXPECT_EQ(h.total, 100u);
  EXPECT_EQ(h.max, 1000);
  EXPECT_EQ(h.Quantile(0.5), 15);
  // The top bucket reports the exact observed max, not the 1023 bound.
  EXPECT_EQ(h.Quantile(0.999), 1000);
  EXPECT_EQ(obs::Log2Hist{}.Quantile(0.5), 0);  // empty
}

TEST(Log2HistTest, MergeAccumulates) {
  obs::Log2Hist a, b;
  a.Record(5);
  b.Record(100);
  b.Record(7);
  a.Merge(b);
  EXPECT_EQ(a.total, 3u);
  EXPECT_EQ(a.sum, 112);
  EXPECT_EQ(a.max, 100);
}

TEST(SlidingDigestTest, RolloverKeepsLastDepthWindows) {
  obs::SlidingDigest d;
  d.Init(2);
  for (int w = 0; w < 3; ++w) {
    d.cur.Record(100 * (w + 1));
    d.Roll();
  }
  EXPECT_EQ(d.closed_windows(), 3u);
  EXPECT_EQ(d.trailing_count(), 2u);
  const auto merged = d.TrailingMerged();
  // Only the last two windows (200, 300) are retained.
  EXPECT_EQ(merged.total, 2u);
  EXPECT_EQ(merged.sum, 500);
  EXPECT_EQ(d.cur.total, 0u);  // Roll clears the open window
}

TEST(SloStateTest, BurnRateMath) {
  obs::SloState s;
  s.spec = obs::SloSpec{"create", 100, 0.1};
  for (int i = 0; i < 9; ++i) s.Observe(50);
  s.Observe(200);
  EXPECT_EQ(s.good, 9u);
  EXPECT_EQ(s.bad, 1u);
  // 10% of ops over target / 10% budget = burning at exactly the allowed
  // rate.
  EXPECT_DOUBLE_EQ(s.WindowBurn(), 1.0);
  s.Roll(3);
  EXPECT_DOUBLE_EQ(s.max_burn, 1.0);
  EXPECT_EQ(s.max_burn_window, 3u);
  EXPECT_EQ(s.window_good + s.window_bad, 0u);
  EXPECT_DOUBLE_EQ(s.WindowBurn(), 0.0);  // idle window burns nothing
}

TEST(IncidentsTest, DisarmedHooksAreNoOps) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  obs::FlightRecorder flight;
  obs::Incidents inc;
  inc.Bind(&sim, &tracer, &flight);
  EXPECT_FALSE(inc.armed());
  inc.RecordFsync(0, sim::Ms(100), 1);
  inc.RecordQueueDepth(0, 10'000);
  inc.RecordLeaderChange(0, 5);
  EXPECT_TRUE(inc.anomalies().empty());
}

TEST(IncidentsTest, CanonicalOpNameResolvesKnownClasses) {
  EXPECT_STREQ(obs::Incidents::CanonicalOpName("create"), "create");
  EXPECT_STREQ(obs::Incidents::CanonicalOpName("stat"), "stat");
  EXPECT_EQ(obs::Incidents::CanonicalOpName("warp-drive"), nullptr);
}

TEST(IncidentsTest, FsyncStallFiresAndCooldownSuppresses) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  obs::FlightRecorder flight;
  obs::Incidents inc;
  inc.Bind(&sim, &tracer, &flight);
  inc.Configure(obs::AnomalyConfig{});
  EXPECT_TRUE(inc.armed());
  inc.RecordFsync(0, sim::Ms(25), 3);
  inc.RecordFsync(0, sim::Ms(30), 1);  // same sim time: in cooldown
  inc.RecordFsync(0, sim::Ms(2), 1);   // healthy: below the stall bound
  ASSERT_EQ(inc.anomalies().size(), 1u);
  const auto& a = inc.anomalies()[0];
  EXPECT_STREQ(a.type, "fsync-stall");
  EXPECT_EQ(a.value, sim::Ms(25));
  EXPECT_EQ(a.threshold, sim::Ms(20));
  EXPECT_EQ(inc.suppressed(), 1u);
}

TEST(IncidentsTest, QueueDepthAndLeaderChangeFire) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  obs::FlightRecorder flight;
  obs::Incidents inc;
  inc.Bind(&sim, &tracer, &flight);
  inc.Configure(obs::AnomalyConfig{});
  inc.RecordQueueDepth(0, 95);  // below watermark
  inc.RecordQueueDepth(0, 96);  // at watermark
  inc.RecordLeaderChange(1, 2);
  EXPECT_TRUE(Fired(inc, "queue-depth"));
  EXPECT_TRUE(Fired(inc, "leader-change"));
  EXPECT_EQ(inc.anomalies().size(), 2u);
}

TEST(IncidentsTest, P999SpikeNeedsTrailingWindowsThenFires) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  obs::FlightRecorder flight;
  obs::Incidents inc;
  inc.Bind(&sim, &tracer, &flight);
  obs::AnomalyConfig cfg;
  cfg.window_ns = sim::Ms(1);
  inc.Configure(cfg);
  sim::RunTask(sim, [](sim::Simulation& s,
                       obs::Incidents& in) -> sim::Task<void> {
    // Three healthy windows build the trailing baseline (p99.9 ~ 16us).
    for (int w = 0; w < 3; ++w) {
      for (int i = 0; i < 20; ++i) in.RecordOp("create", 0, 10'000);
      co_await s.Delay(sim::Ms(1));
    }
    EXPECT_FALSE(Fired(in, "p999-spike"));
    // Anomalous window: every op over the 500us floor and 3x baseline.
    for (int i = 0; i < 20; ++i) in.RecordOp("create", 0, 600'000);
    co_await s.Delay(sim::Ms(1));
    // The next sample closes the anomalous window and fires the detector.
    in.RecordOp("create", 0, 10'000);
  }(sim, inc));
  ASSERT_TRUE(Fired(inc, "p999-spike"));
  for (const auto& a : inc.anomalies()) {
    if (std::string_view(a.type) == "p999-spike") {
      EXPECT_EQ(a.value, 600'000);
      EXPECT_NE(a.detail.find("op=create"), std::string::npos);
    }
  }
}

TEST(IncidentsTest, BurnRateAlertOnWindowClose) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  obs::FlightRecorder flight;
  obs::Incidents inc;
  inc.Bind(&sim, &tracer, &flight);
  obs::AnomalyConfig cfg;
  cfg.window_ns = sim::Ms(1);
  inc.Configure(cfg);
  inc.AddSlo(obs::SloSpec{"create", 1'000, 0.001});
  for (int i = 0; i < 20; ++i) inc.RecordOp("create", 0, 5'000);
  inc.Flush();  // closes the open window
  EXPECT_TRUE(Fired(inc, "burn-rate"));
  const std::string report = inc.ReportJson();
  EXPECT_NE(report.find("\"burn_alerts\":1"), std::string::npos);
  EXPECT_NE(report.find("\"met\":false"), std::string::npos);
}

TEST(IncidentsTest, CacheCollapseAfterHealthyTrailingRate) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  obs::FlightRecorder flight;
  obs::Incidents inc;
  inc.Bind(&sim, &tracer, &flight);
  obs::AnomalyConfig cfg;
  cfg.window_ns = sim::Ms(1);
  inc.Configure(cfg);
  sim::RunTask(sim, [](sim::Simulation& s,
                       obs::Incidents& in) -> sim::Task<void> {
    // Two healthy windows: 90% hit rate over enough probes.
    for (int w = 0; w < 2; ++w) {
      for (int i = 0; i < 100; ++i) in.RecordCacheProbe(0, i % 10 != 0);
      co_await s.Delay(sim::Ms(1));
    }
    // Collapse: 10% hit rate.
    for (int i = 0; i < 100; ++i) in.RecordCacheProbe(0, i % 10 == 0);
  }(sim, inc));
  EXPECT_FALSE(Fired(inc, "cache-collapse"));
  inc.Flush();
  EXPECT_TRUE(Fired(inc, "cache-collapse"));
}

TEST(IncidentsTest, ReportJsonListsClassQuantiles) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  tracer.Bind(&sim);
  const auto track = tracer.Track("client0");
  obs::FlightRecorder flight;
  obs::Incidents inc;
  inc.Bind(&sim, &tracer, &flight);
  inc.Configure(obs::AnomalyConfig{});
  for (int i = 0; i < 10; ++i) inc.RecordOp("stat", track, 1'000);
  inc.Flush();
  const std::string report = inc.ReportJson();
  EXPECT_NE(report.find("\"op\":\"stat\""), std::string::npos);
  EXPECT_NE(report.find("\"node\":\"client0\""), std::string::npos);
  EXPECT_NE(report.find("\"count\":10"), std::string::npos);
}

}  // namespace
}  // namespace dufs
