#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"

namespace dufs::obs {
namespace {

// Drives a gauge/counter pair with seeded jitter so the sampled series is a
// function of the sim seed and nothing else.
sim::Task<void> Drive(sim::Simulation* sim, Gauge g, Counter c, int steps) {
  for (int i = 0; i < steps; ++i) {
    co_await sim->Delay(100 * sim::kMicrosecond);
    g.Set(static_cast<std::int64_t>(sim->rng().NextBelow(50)));
    c.Inc(1 + sim->rng().NextBelow(3));
  }
}

std::string RunOnce(std::uint64_t seed) {
  sim::Simulation sim(seed);
  MetricsRegistry reg;
  auto& scope = reg.scope("node0");
  TimelineSampler sampler;
  sampler.set_interval(200 * sim::kMicrosecond);
  sampler.WatchGauge("node0/queue", scope.gauge("queue"));
  sampler.WatchCounter("node0/ops", scope.counter("ops"));
  sim::CurrentSimulationScope cs(&sim);
  sim.Spawn(Drive(&sim, scope.gauge("queue"), scope.counter("ops"), 20));
  sampler.Start(sim);
  sim.Run();
  return sampler.ToJson();
}

TEST(TimelineTest, SamplesOnTheSimClock) {
  sim::Simulation sim;
  MetricsRegistry reg;
  auto& scope = reg.scope("n");
  TimelineSampler sampler;
  sampler.set_interval(sim::kMillisecond);
  sampler.WatchGauge("n/q", scope.gauge("q"));
  sim::CurrentSimulationScope cs(&sim);
  sim.Spawn(Drive(&sim, scope.gauge("q"), scope.counter("c"), 50));
  sampler.Start(sim);  // one sample at t=0, then every 1ms
  sim.Run();
  // Drive spans 50 * 100us = 5ms: t=0 plus wake-ups at 1..5ms. The pump
  // parks itself when it wakes to an empty queue, so the run terminates.
  EXPECT_GE(sampler.samples(), 6u);
  EXPECT_FALSE(sampler.running());
  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"t\":[0,"), std::string::npos);
  EXPECT_NE(json.find("\"n/q\""), std::string::npos);
}

TEST(TimelineTest, RingDropsOldestWhenFull) {
  sim::Simulation sim;
  MetricsRegistry reg;
  auto& scope = reg.scope("n");
  TimelineSampler::Options opts;
  opts.interval = 100 * sim::kMicrosecond;
  opts.capacity = 4;
  TimelineSampler sampler(opts);
  sampler.WatchCounter("n/c", scope.counter("c"));
  sim::CurrentSimulationScope cs(&sim);
  sim.Spawn(Drive(&sim, scope.gauge("q"), scope.counter("c"), 10));
  sampler.Start(sim);
  sim.Run();
  EXPECT_EQ(sampler.samples(), 4u);
  EXPECT_GT(sampler.dropped(), 0u);
  // The exported ticks stay chronological across the wrap point.
  const std::string json = sampler.ToJson();
  const auto t = json.find("\"t\":[");
  ASSERT_NE(t, std::string::npos);
  EXPECT_EQ(json.find("\"t\":[0,"), std::string::npos);  // t=0 was evicted
}

TEST(TimelineTest, LateSeriesIsZeroBackfilled) {
  sim::Simulation sim;
  MetricsRegistry reg;
  auto& scope = reg.scope("n");
  TimelineSampler sampler;
  sampler.set_interval(100 * sim::kMicrosecond);
  sampler.WatchGauge("n/q", scope.gauge("q"));
  sim::CurrentSimulationScope cs(&sim);
  sim.Spawn(Drive(&sim, scope.gauge("q"), scope.counter("c"), 4));
  sampler.Start(sim);
  sim.Run(200 * sim::kMicrosecond);
  sampler.WatchCounter("n/c", scope.counter("c"));  // joins mid-run
  sim.Run();
  const std::string json = sampler.ToJson();
  // The late series has as many points as the tick ring, zero-padded at
  // the front where it was not yet watched.
  EXPECT_NE(json.find("\"n/c\":[0,"), std::string::npos);
}

TEST(TimelineTest, IdenticalSeedsSerializeByteIdentically) {
  const std::string a = RunOnce(42);
  const std::string b = RunOnce(42);
  EXPECT_EQ(a, b);
  const std::string c = RunOnce(43);
  EXPECT_NE(a, c);  // the series really do depend on the seeded run
}

TEST(TimelineTest, StopCancelsThePump) {
  sim::Simulation sim;
  MetricsRegistry reg;
  auto& scope = reg.scope("n");
  TimelineSampler sampler;
  sampler.set_interval(100 * sim::kMicrosecond);
  sampler.WatchGauge("n/q", scope.gauge("q"));
  sim::CurrentSimulationScope cs(&sim);
  sim.Spawn(Drive(&sim, scope.gauge("q"), scope.counter("c"), 20));
  sampler.Start(sim);
  sim.Run(300 * sim::kMicrosecond);
  const std::size_t before = sampler.samples();
  sampler.Stop();
  sim.Run();
  EXPECT_EQ(sampler.samples(), before);  // no samples after Stop()
  EXPECT_FALSE(sampler.running());
}

}  // namespace
}  // namespace dufs::obs
