#include "obs/flight.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/simulation.h"

namespace dufs {
namespace {

std::vector<std::int64_t> Starts(const obs::FlightRecorder& fr,
                                 obs::TrackId track) {
  std::vector<std::int64_t> out;
  fr.ForEach(track, [&](const obs::FlightRecorder::Record& r) {
    out.push_back(r.start);
  });
  return out;
}

TEST(FlightRecorderTest, FillsWithoutEvictionUpToCapacity) {
  obs::FlightRecorder fr;
  fr.SetCapacity(4);
  for (int i = 0; i < 4; ++i) fr.Admit(0, "w", "c", i, 10, 0, -1);
  EXPECT_EQ(fr.size(0), 4u);
  EXPECT_EQ(fr.evicted(0), 0u);
  EXPECT_EQ(fr.admitted(), 4u);
  EXPECT_EQ(Starts(fr, 0), (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(FlightRecorderTest, RingEvictsOldestKeepsOrder) {
  obs::FlightRecorder fr;
  fr.SetCapacity(4);
  for (int i = 0; i < 7; ++i) fr.Admit(0, "w", "c", i, 10, 0, -1);
  EXPECT_EQ(fr.size(0), 4u);
  EXPECT_EQ(fr.evicted(0), 3u);
  EXPECT_EQ(fr.admitted(), 7u);
  // Oldest-to-newest: the last `capacity` admissions, in admission order.
  EXPECT_EQ(Starts(fr, 0), (std::vector<std::int64_t>{3, 4, 5, 6}));
}

TEST(FlightRecorderTest, TracksAreIndependentAndSeqIsGlobal) {
  obs::FlightRecorder fr;
  fr.SetCapacity(2);
  fr.Admit(0, "a", "c", 1, 1, 0, -1);
  fr.Admit(2, "b", "c", 2, 1, 0, -1);  // skips track 1
  EXPECT_EQ(fr.track_count(), 3u);
  EXPECT_EQ(fr.size(0), 1u);
  EXPECT_EQ(fr.size(1), 0u);
  EXPECT_EQ(fr.size(2), 1u);
  std::uint64_t last_seq = 0;
  fr.ForEach(2, [&](const obs::FlightRecorder::Record& r) {
    last_seq = r.seq;
  });
  EXPECT_EQ(last_seq, 2u);  // global admission counter
  EXPECT_EQ(Starts(fr, 7), std::vector<std::int64_t>{});  // unknown track
}

TEST(FlightRecorderTest, ZeroCapacityRequestIgnored) {
  obs::FlightRecorder fr;
  fr.SetCapacity(0);
  EXPECT_EQ(fr.capacity(), 512u);  // default stands
}

TEST(FlightRecorderTest, ClearResets) {
  obs::FlightRecorder fr;
  fr.Admit(0, "w", "c", 1, 1, 0, -1);
  fr.Clear();
  EXPECT_EQ(fr.admitted(), 0u);
  EXPECT_EQ(fr.track_count(), 0u);
}

TEST(FlightRecorderTest, DumpJsonIsChromeShapedAndDeterministic) {
  auto build = [](std::string* out) {
    sim::Simulation sim(1);
    obs::Tracer tracer;
    tracer.Bind(&sim);
    const auto t0 = tracer.Track("zk0");
    const auto t1 = tracer.Track("client0");
    obs::FlightRecorder fr;
    fr.SetCapacity(3);
    for (int i = 0; i < 5; ++i) {
      fr.Admit(t0, "fsync-batch", "zk", 1000 * i, 700, 9, -1);
    }
    fr.Admit(t1, "nic-tx", "net", 400, 100, 9, 25);
    *out = fr.DumpJson(tracer, "{\"type\":\"test\"}");
  };
  std::string a, b;
  build(&a);
  build(&b);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"anomaly\":{\"type\":\"test\"}"), std::string::npos);
  EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(a.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(a.find("\"zk0\""), std::string::npos);
  EXPECT_NE(a.find("\"fsync-batch\""), std::string::npos);
  EXPECT_NE(a.find("\"wait_ns\":25"), std::string::npos);
  // The evicted spans (start 0, 1000) are gone from the dump.
  EXPECT_EQ(a.find("\"ts\":0.000"), std::string::npos);
}

TEST(FlightRecorderTest, TracerAdmitsSpansWhenOnlyFlightAttached) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  tracer.Bind(&sim);
  obs::FlightRecorder fr;
  tracer.AttachFlight(&fr);
  EXPECT_FALSE(tracer.enabled());   // full log off...
  EXPECT_TRUE(tracer.recording());  // ...but spans still live
  const auto track = tracer.Track("node0");
  tracer.Complete(track, "work", "cat", 100, 50, 7);
  EXPECT_TRUE(tracer.events().empty());  // no unbounded log
  EXPECT_EQ(fr.size(track), 1u);
  fr.ForEach(track, [&](const obs::FlightRecorder::Record& r) {
    EXPECT_STREQ(r.name, "work");
    EXPECT_EQ(r.start, 100);
    EXPECT_EQ(r.dur, 50);
    EXPECT_EQ(r.trace, 7u);
    EXPECT_EQ(r.wait_ns, -1);
  });
}

}  // namespace
}  // namespace dufs
