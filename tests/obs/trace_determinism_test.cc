// Determinism of the observability exports: two identically-seeded runs of
// the same mdtest workload must produce byte-identical Chrome trace JSON and
// byte-identical metrics JSON. This is what makes a trace attachable to a
// bug report — rerunning the seed reproduces the exact timeline.
//
// Anything process-global leaking into an export (ZK session numbers,
// pointers, host time) breaks this test.
#include <gtest/gtest.h>

#include <string>

#include "mdtest/workload.h"

namespace dufs {
namespace {

using mdtest::BackendKind;
using mdtest::MdtestConfig;
using mdtest::MdtestRunner;
using mdtest::Phase;
using mdtest::Target;
using mdtest::Testbed;
using mdtest::TestbedConfig;

struct RunOutput {
  std::string trace_json;
  std::string metrics_json;
  double ops_per_sec = 0;
};

RunOutput RunWorkload(std::uint64_t seed, std::size_t items = 5) {
  TestbedConfig config;
  config.seed = seed;
  config.zk_servers = 3;
  config.client_nodes = 2;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 2;
  config.enable_trace = true;
  Testbed tb(config);
  tb.MountAll();

  MdtestConfig mc;
  mc.processes = 8;
  mc.items_per_proc = items;
  MdtestRunner runner(tb, mc);
  auto results = runner.Run(Target::kDufs,
                            {Phase::kFileCreate, Phase::kFileStat});
  RunOutput out;
  out.trace_json = tb.obs().tracer().ToChromeJson();
  out.metrics_json = tb.obs().metrics().ToJson();
  out.ops_per_sec = results[0].ops_per_sec;
  return out;
}

TEST(TraceDeterminismTest, IdenticalSeedsProduceIdenticalExports) {
  const RunOutput a = RunWorkload(42);
  const RunOutput b = RunWorkload(42);
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_GT(a.trace_json.size(), 1000u);  // a real workload, not a stub
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.ops_per_sec, b.ops_per_sec);
}

TEST(TraceDeterminismTest, DifferentWorkloadsDiverge) {
  // Sanity check that the equality above is meaningful: a different
  // workload produces a different timeline.
  const RunOutput a = RunWorkload(42, 5);
  const RunOutput c = RunWorkload(42, 6);
  EXPECT_NE(a.trace_json, c.trace_json);
}

}  // namespace
}  // namespace dufs
