#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "mdtest/testbed.h"
#include "obs/obs.h"
#include "sim/task.h"

namespace dufs {
namespace {

using mdtest::BackendKind;
using mdtest::Testbed;
using mdtest::TestbedConfig;

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;  // not bound, not enabled
  tracer.Complete(0, "x", "c", 0, 1, 0);
  EXPECT_TRUE(tracer.events().empty());
  obs::Span span(&tracer, 0, "op", "cat");
  EXPECT_FALSE(span.active());
  span.End();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, EnableRequiresBoundSimulation) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);  // no sim bound yet
  EXPECT_FALSE(tracer.enabled());
}

TEST(TracerTest, TrackIdsFollowRegistrationOrder) {
  obs::Tracer tracer;
  const auto a = tracer.Track("zk0");
  const auto b = tracer.Track("client0");
  EXPECT_EQ(tracer.Track("zk0"), a);  // get-or-create
  EXPECT_NE(a, b);
  ASSERT_EQ(tracer.tracks().size(), 2u);
  EXPECT_EQ(tracer.tracks()[a], "zk0");
  EXPECT_EQ(tracer.tracks()[b], "client0");
}

TEST(TracerTest, ChromeJsonHasMetadataAndEvents) {
  sim::Simulation sim(1);
  obs::Tracer tracer;
  tracer.Bind(&sim);
  tracer.SetEnabled(true);
  const auto track = tracer.Track("node0");
  tracer.Complete(track, "work", "cat", 1'500, 2'500, 7,
                  {{"key", "", 42, false}});
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"node0\""), std::string::npos);
  // 1500ns start / 2500ns duration as fixed-point microseconds.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":7"), std::string::npos);
  EXPECT_NE(json.find("\"key\":42"), std::string::npos);
}

// The acceptance chain: one DUFS Create, traced end to end — the root op
// span, the ZK RPC under it, the leader's quorum round, and the journal
// fsync batch all carry the same trace id.
TEST(TraceChainTest, CreateSpansChainThroughStack) {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 1;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 1;
  config.enable_trace = true;
  Testbed tb(config);
  tb.MountAll();

  // MountAll itself produces spans; keep only the Create's.
  tb.obs().tracer().Clear();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto attr = co_await t.client(0).dufs->Create("/traced", 0644);
    DUFS_CHECK(attr.ok());
  }(tb));

  const auto& events = tb.obs().tracer().events();
  ASSERT_FALSE(events.empty());
  auto find_name = [&](std::string_view name) {
    return std::find_if(events.begin(), events.end(),
                        [&](const obs::Tracer::Event& e) {
                          return e.name == name;
                        });
  };
  auto create = find_name("create");
  ASSERT_NE(create, events.end());
  const obs::TraceId trace = create->trace;
  ASSERT_NE(trace, 0u);

  for (std::string_view name :
       {"zk-rpc", "zk-write", "quorum-round", "fsync-batch"}) {
    auto it = std::find_if(events.begin(), events.end(),
                           [&](const obs::Tracer::Event& e) {
                             return e.name == name && e.trace == trace;
                           });
    EXPECT_NE(it, events.end()) << "missing span in chain: " << name;
  }
  // The chain nests in time: each child starts at or after the root.
  for (const auto& e : events) {
    if (e.trace == trace) {
      EXPECT_GE(e.start, create->start) << e.name;
    }
  }
}

TEST(TraceChainTest, TracingOffByDefaultAndCheap) {
  TestbedConfig config;
  config.zk_servers = 3;
  config.client_nodes = 1;
  config.backend = BackendKind::kMemFs;
  config.backend_instances = 1;
  Testbed tb(config);
  tb.MountAll();
  sim::RunTask(tb.sim(), [](Testbed& t) -> sim::Task<void> {
    auto attr = co_await t.client(0).dufs->Create("/untraced", 0644);
    DUFS_CHECK(attr.ok());
  }(tb));
  EXPECT_FALSE(tb.obs().tracer().enabled());
  EXPECT_TRUE(tb.obs().tracer().events().empty());
  // Metrics still collected even with tracing off.
  const auto merged = tb.obs().metrics().Merged();
  EXPECT_GT(merged.counters.at("zk.requests"), 0u);
  EXPECT_GT(merged.counters.at("zk.writes"), 0u);
}

}  // namespace
}  // namespace dufs
