// The coroutine-aware CPU profiler (DESIGN.md §14): deterministic
// count-mode sampling, logical-stack maintenance across suspensions and
// spawns, truncation/overflow accounting, and the signal-mode torture run
// (live SIGPROF delivery over busy scheduler churn — also exercised under
// ASan and DUFS_AUDIT in CI).
#include <gtest/gtest.h>

#include <ctime>  // dufs-lint: allow(sim-time-source) CPU-time budget for the SIGPROF tests, never feeds sim state
#include <string>
#include <vector>

#include "obs/prof.h"
#include "sim/task.h"

namespace dufs {
namespace {

// CPU seconds consumed so far: ITIMER_PROF fires on CPU time, so the
// signal tests burn and bound on CPU time, not wall time.
double CpuSeconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;  // dufs-lint: allow(sim-time-source) bounds the SIGPROF torture loops, never feeds sim state
}

// A client-like actor: one op-class frame held across many suspensions.
sim::Task<void> WorkerLoop(sim::Simulation* sim, int rounds) {
  prof::ProfScope scope("op.work", prof::FrameKind::kOpClass);
  for (int i = 0; i < rounds; ++i) {
    co_await sim->Delay(10);
  }
}

sim::Task<void> Child(sim::Simulation* sim) {
  prof::ProfScope scope("child", prof::FrameKind::kComponent);
  for (int i = 0; i < 20; ++i) {
    co_await sim->Delay(5);
  }
}

sim::Task<void> Parent(sim::Simulation* sim) {
  prof::ProfScope scope("parent", prof::FrameKind::kComponent);
  sim->Spawn(Child(sim));
  co_await sim->Delay(200);
}

// One deterministic mixed workload: timer churn (callback events) plus
// coroutine delay loops (handle events with captured context).
void RunMixedWorkload(std::uint64_t seed, int rounds = 50) {
  sim::Simulation s(seed);
  sim::CurrentSimulationScope scope(&s);
  for (int p = 0; p < 8; ++p) s.Spawn(WorkerLoop(&s, rounds));
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    s.ScheduleFn(static_cast<sim::Duration>(i % 97), [&fired] { ++fired; });
  }
  s.Run();
  ASSERT_EQ(fired, 500);
}

std::string RunCountProfile(std::uint64_t seed, std::uint64_t every,
                            int rounds = 50) {
  prof::Options o;
  o.mode = prof::Options::Mode::kCount;
  o.every = every;
  std::string error;
  EXPECT_TRUE(prof::Start(o, &error)) << error;
  RunMixedWorkload(seed, rounds);
  prof::Stop();
  std::string folded = prof::ExportFolded();
  prof::Reset();
  return folded;
}

TEST(ProfCountModeTest, ByteDeterministicAcrossRuns) {
  const std::string a = RunCountProfile(7, 4);
  const std::string b = RunCountProfile(7, 4);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The logical stacks actually attribute: coroutine frames survive their
  // suspensions, callbacks get the engine frame.
  EXPECT_NE(a.find("op.work"), std::string::npos);
  EXPECT_NE(a.find("engine.callback"), std::string::npos);
}

TEST(ProfCountModeTest, DifferentWorkloadsDiverge) {
  // The equality above is meaningful: a different event mix moves the
  // every-Nth fold points and the per-frame counts.
  EXPECT_NE(RunCountProfile(7, 4, 50), RunCountProfile(7, 4, 80));
}

TEST(ProfCountModeTest, SpawnedTaskInheritsSpawnerContext) {
  prof::Options o;
  o.mode = prof::Options::Mode::kCount;
  o.every = 1;
  std::string error;
  ASSERT_TRUE(prof::Start(o, &error)) << error;
  {
    sim::Simulation s(3);
    sim::CurrentSimulationScope scope(&s);
    s.Spawn(Parent(&s));
    s.Run();
  }
  prof::Stop();
  const std::string folded = prof::ExportFolded();
  prof::Reset();
  // The child's resumes carry the parent frame it was spawned under, even
  // after the parent's scope object itself has died.
  EXPECT_NE(folded.find("parent;child "), std::string::npos) << folded;
}

TEST(ProfCountModeTest, DigestMatchesStats) {
  prof::Options o;
  o.mode = prof::Options::Mode::kCount;
  o.every = 8;
  std::string error;
  ASSERT_TRUE(prof::Start(o, &error)) << error;
  RunMixedWorkload(5);
  prof::Stop();
  const prof::Stats st = prof::GetStats();
  const std::string digest = prof::ExportDigestJson();
  prof::Reset();
  EXPECT_GT(st.samples, 0u);
  EXPECT_EQ(st.dropped, 0u);   // no ring in count mode
  EXPECT_EQ(st.signals, 0u);   // no timer in count mode
  EXPECT_GE(st.dispatches, st.samples * 8);
  EXPECT_NE(digest.find("\"mode\":\"count\""), std::string::npos);
  EXPECT_NE(
      digest.find("\"samples\":" + std::to_string(st.samples)),
      std::string::npos);
}

TEST(ProfContextTest, TruncationIsCountedAndPopsStayBalanced) {
  prof::Options o;
  o.mode = prof::Options::Mode::kCount;
  o.every = 1 << 30;  // never folds; we only exercise the context stack
  std::string error;
  ASSERT_TRUE(prof::Start(o, &error)) << error;
  std::vector<prof::FrameToken> tokens;
  for (int i = 0; i < 40; ++i) {
    tokens.push_back(
        prof::PushFrame("deep", prof::FrameKind::kComponent));
  }
  EXPECT_EQ(prof::GetStats().truncated,
            40u - prof::internal::kMaxDepth);
  EXPECT_EQ(prof::internal::g_ctx.depth.load(std::memory_order_relaxed),
            prof::internal::kMaxDepth);
  for (int i = 39; i >= 0; --i) prof::PopFrame(tokens[static_cast<std::size_t>(i)]);
  EXPECT_EQ(prof::internal::g_ctx.depth.load(std::memory_order_relaxed), 0u);
  prof::Stop();
  prof::Reset();
}

TEST(ProfContextTest, DisabledHooksAreInert) {
  ASSERT_FALSE(prof::Running());
  prof::FrameToken t = prof::PushFrame("x", prof::FrameKind::kComponent);
  EXPECT_FALSE(t.pushed);
  prof::PopFrame(t);  // no-op, must not underflow anything
  EXPECT_EQ(prof::internal::g_ctx.depth.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(prof::CaptureContext(), nullptr);
}

TEST(ProfControlTest, StartRejectsBadOptionsAndDoubleStart) {
  prof::Options bad;
  bad.mode = prof::Options::Mode::kCount;
  bad.every = 0;
  std::string error;
  EXPECT_FALSE(prof::Start(bad, &error));
  EXPECT_FALSE(error.empty());

  prof::Options ok;
  ok.mode = prof::Options::Mode::kCount;
  ok.every = 4;
  ASSERT_TRUE(prof::Start(ok, &error)) << error;
  EXPECT_TRUE(prof::Running());
  EXPECT_FALSE(prof::Start(ok, &error));  // already running
  prof::Stop();
  EXPECT_FALSE(prof::Running());
  prof::Stop();  // idempotent
  prof::Reset();
}

// --- signal mode ----------------------------------------------------------
// ITIMER_PROF fires on consumed CPU time, so these tests burn CPU in a
// bounded loop and skip (rather than flake) on platforms or environments
// where no SIGPROF arrives.

TEST(ProfSignalModeTest, TortureUnderSchedulerChurn) {
  prof::Options o;
  o.hz = 10000;
  o.ring_slots = 64;
  std::string error;
  if (!prof::Start(o, &error)) GTEST_SKIP() << error;
  const double start = CpuSeconds();
  while (prof::GetStats().signals < 64 && CpuSeconds() - start < 2.0) {
    // Busy churn: context captures, snapshot restores and watermark drains
    // all run under live SIGPROF delivery.
    RunMixedWorkload(11);
  }
  prof::Stop();
  const prof::Stats st = prof::GetStats();
  const std::string folded = prof::ExportFolded();
  prof::Reset();
  if (st.signals == 0) GTEST_SKIP() << "no SIGPROF delivered";
  // Exact accounting: every delivery was either admitted to the ring (and
  // folded on drain) or counted as dropped — never lost, never corrupted.
  EXPECT_EQ(st.samples + st.dropped, st.signals);
  EXPECT_FALSE(folded.empty());
}

TEST(ProfSignalModeTest, RingOverflowIsCountedNotCorrupted) {
  prof::Options o;
  o.hz = 10000;
  o.ring_slots = 8;
  std::string error;
  if (!prof::Start(o, &error)) GTEST_SKIP() << error;
  // Pure spin, no sim dispatches: nothing drains the tiny ring until Stop,
  // so deliveries beyond its capacity must be dropped and counted.
  const double start = CpuSeconds();
  volatile std::uint64_t sink = 0;
  while (prof::GetStats().signals < 64 && CpuSeconds() - start < 2.0) {
    for (int i = 0; i < 100000; ++i) sink = sink + 1;
  }
  prof::Stop();
  const prof::Stats st = prof::GetStats();
  const std::string folded = prof::ExportFolded();
  prof::Reset();
  if (st.signals <= 8) GTEST_SKIP() << "not enough SIGPROF deliveries";
  EXPECT_GT(st.dropped, 0u);
  EXPECT_EQ(st.samples + st.dropped, st.signals);
  // Bare-stack samples land on the sentinel frame instead of vanishing.
  EXPECT_NE(folded.find("unattributed"), std::string::npos) << folded;
}

}  // namespace
}  // namespace dufs
