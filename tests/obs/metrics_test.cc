#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace dufs::obs {
namespace {

TEST(MetricsTest, DefaultHandlesWriteToDummies) {
  // The null-object pattern: uninstrumented code holds default handles and
  // records without ever checking for attachment.
  Counter c;
  Gauge g;
  Histogram h;
  c.Inc();
  g.Set(7);
  h.Record(123);
  // Dummies are shared process-wide; only verify this doesn't crash and the
  // handles stay readable.
  EXPECT_GE(c.value(), 1u);
  EXPECT_GE(g.max(), 7);
}

TEST(MetricsTest, ScopeGetOrCreateSharesCells) {
  Scope scope("node");
  Counter a = scope.counter("ops");
  Counter b = scope.counter("ops");
  a.Inc(2);
  b.Inc(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(scope.counter("ops").value(), 5u);
  EXPECT_EQ(scope.counter("other").value(), 0u);
}

TEST(MetricsTest, GaugeTracksHighWatermark) {
  Scope scope("node");
  Gauge g = scope.gauge("queue");
  g.Set(3);
  g.Set(10);
  g.Set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 10);
  g.Add(-2);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 10);
}

TEST(MetricsTest, GaugeTracksLowWatermark) {
  Scope scope("node");
  Gauge g = scope.gauge("queue");
  // Never-set gauge reports its current value as the min.
  EXPECT_EQ(g.min(), 0);
  g.Set(5);
  g.Set(12);
  g.Set(3);
  g.Set(8);
  EXPECT_EQ(g.min(), 3);
  EXPECT_EQ(g.max(), 12);
  g.Add(-8);  // Add routes through Set: zero becomes the new low
  EXPECT_EQ(g.min(), 0);
}

TEST(MetricsTest, TimerIsHistogram) {
  Scope scope("node");
  Timer t = scope.timer("lat");
  t.Record(1'000'000);
  EXPECT_EQ(scope.histogram("lat").hist().count(), 1u);
}

TEST(MetricsTest, MergedSnapshotAcrossNodes) {
  MetricsRegistry reg;
  reg.scope("a").counter("ops").Inc(2);
  reg.scope("b").counter("ops").Inc(3);
  reg.scope("a").gauge("q").Set(5);
  reg.scope("b").gauge("q").Set(1);
  reg.scope("a").histogram("lat").Record(100);
  reg.scope("b").histogram("lat").Record(200);
  reg.scope("b").counter("only_b").Inc();

  const auto merged = reg.Merged();
  EXPECT_EQ(merged.counters.at("ops"), 5u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_EQ(merged.gauges.at("q"), 6);       // values sum
  EXPECT_EQ(merged.gauge_maxes.at("q"), 5);  // maxes take max
  EXPECT_EQ(merged.gauge_mins.at("q"), 1);   // mins take min
  EXPECT_EQ(merged.histograms.at("lat").count(), 2u);
  EXPECT_EQ(merged.histograms.at("lat").MaxSample(), 200);
}

TEST(MetricsTest, ToJsonIsDeterministicAndStructured) {
  auto build = [] {
    MetricsRegistry reg;
    reg.scope("zk0").counter("zk.writes").Inc(4);
    reg.scope("client0").gauge("q").Set(2);
    reg.scope("client0").histogram("op.ns").Record(1'000);
    return reg.ToJson();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);  // byte-identical for identical registries
  EXPECT_NE(a.find("\"nodes\""), std::string::npos);
  EXPECT_NE(a.find("\"merged\""), std::string::npos);
  EXPECT_NE(a.find("\"zk.writes\":4"), std::string::npos);
  EXPECT_NE(a.find("\"client0\""), std::string::npos);
  // Gauges export value/min/max; histograms export count and the exact sum
  // (tracestats cross-checks its trace decomposition against that sum).
  EXPECT_NE(a.find("\"q\":{\"value\":2,\"min\":2,\"max\":2}"),
            std::string::npos);
  EXPECT_NE(a.find("\"sum\":1000"), std::string::npos);
}

TEST(MetricsTest, ToJsonIgnoresRegistrationOrder) {
  // Node scopes and cells live in sorted maps, so the export must not
  // depend on the order components attached — permuting registration
  // produces byte-identical JSON.
  auto build = [](bool reversed) {
    MetricsRegistry reg;
    const char* nodes[] = {"client0", "client1", "zk0", "zk1"};
    const int n = 4;
    for (int i = 0; i < n; ++i) {
      const char* node = nodes[reversed ? n - 1 - i : i];
      auto& scope = reg.scope(node);
      if (reversed) {
        scope.histogram("op.ns").Record(500);
        scope.gauge("q").Set(3);
        scope.counter("ops").Inc(2);
      } else {
        scope.counter("ops").Inc(2);
        scope.gauge("q").Set(3);
        scope.histogram("op.ns").Record(500);
      }
    }
    return reg.ToJson();
  };
  EXPECT_EQ(build(false), build(true));
}

}  // namespace
}  // namespace dufs::obs
