// Integration tests: full replicated ensemble over the simulated cluster.
#include <gtest/gtest.h>

#include "testutil/co_assert.h"

#include <memory>

#include "net/rpc.h"
#include "sim/task.h"
#include "zk/client.h"
#include "zk/server.h"

namespace dufs::zk {
namespace {

std::vector<std::uint8_t> Bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

struct Ensemble {
  sim::Simulation sim;
  net::Network net{sim};
  ZkEnsembleConfig config;
  std::vector<std::unique_ptr<net::RpcEndpoint>> server_eps;
  std::vector<std::unique_ptr<ZkServer>> servers;
  std::vector<std::unique_ptr<net::RpcEndpoint>> client_eps;
  std::vector<std::unique_ptr<ZkClient>> clients;

  explicit Ensemble(std::size_t n_servers, std::size_t n_clients = 1,
                    bool failure_detection = false, std::uint64_t seed = 1,
                    bool group_commit = false)
      : sim(seed) {
    config.enable_failure_detection = failure_detection;
    config.group_commit = group_commit;
    for (std::size_t i = 0; i < n_servers; ++i) {
      config.servers.push_back(net.AddNode("zk" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n_servers; ++i) {
      server_eps.push_back(
          std::make_unique<net::RpcEndpoint>(net, config.servers[i]));
      servers.push_back(
          std::make_unique<ZkServer>(*server_eps[i], config, i));
      servers[i]->Start();
    }
    for (std::size_t i = 0; i < n_clients; ++i) {
      const auto node = net.AddNode("client" + std::to_string(i));
      client_eps.push_back(std::make_unique<net::RpcEndpoint>(net, node));
      ZkClientConfig cc;
      cc.servers = config.servers;
      cc.attach_index = i;
      clients.push_back(std::make_unique<ZkClient>(*client_eps[i], cc));
    }
  }

  ~Ensemble() { sim.Shutdown(); }

  ZkClient& client(std::size_t i = 0) { return *clients[i]; }

  void Connect() {
    sim::RunTask(sim, [](Ensemble& e) -> sim::Task<void> {
      for (auto& c : e.clients) {
        auto st = co_await c->Connect();
        EXPECT_TRUE(st.ok()) << st;
      }
    }(*this));
  }

  // Lets in-flight replication traffic (commits to followers) finish.
  void Drain(sim::Duration d = sim::Ms(50)) { sim.Run(sim.now() + d); }

  bool Converged() {
    std::uint64_t fp = 0;
    bool first = true;
    for (auto& s : servers) {
      if (!net.node(s->node_id()).up()) continue;
      if (first) {
        fp = s->db().Fingerprint();
        first = false;
      } else if (s->db().Fingerprint() != fp) {
        return false;
      }
    }
    return true;
  }
};

TEST(EnsembleTest, ConnectCreatesReplicatedSession) {
  Ensemble e(3);
  e.Connect();
  e.Drain();
  for (auto& s : e.servers) {
    EXPECT_TRUE(s->db().SessionExists(e.client().session()));
  }
}

TEST(EnsembleTest, CreateGetRoundTrip) {
  Ensemble e(3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    auto created = co_await en.client().Create("/hello", Bytes("world"));
    CO_ASSERT_TRUE(created.ok());
    EXPECT_EQ(*created, "/hello");
    auto got = co_await en.client().Get("/hello");
    CO_ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->data, Bytes("world"));
    EXPECT_EQ(got->stat.version, 0);
  }(e));
}

TEST(EnsembleTest, AllReplicasConverge) {
  Ensemble e(5);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      auto r = co_await en.client().Create("/n" + std::to_string(i),
                                           Bytes("data"));
      CO_ASSERT_TRUE(r.ok());
    }
    (void)co_await en.client().Set("/n0", Bytes("updated"));
    (void)co_await en.client().Delete("/n1");
  }(e));
  e.Drain();
  EXPECT_TRUE(e.Converged());
  for (auto& s : e.servers) {
    EXPECT_EQ(s->db().tree().node_count(), 20u);  // root + 20 - 1 deleted
  }
}

TEST(EnsembleTest, WritesThroughFollowerWork) {
  Ensemble e(3, /*n_clients=*/3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    // Client 1 and 2 attach to followers (attach_index 1, 2).
    auto r = co_await en.client(1).Create("/via-follower", Bytes("x"));
    CO_ASSERT_TRUE(r.ok());
    // Read-your-write through the same session server.
    auto got = co_await en.client(1).Get("/via-follower");
    EXPECT_TRUE(got.ok());
    // Another client, another server: visible after the commit fans out.
    auto got2 = co_await en.client(2).Get("/via-follower");
    EXPECT_TRUE(got2.ok());
  }(e));
}

TEST(EnsembleTest, SequentialCreateIsGloballyOrdered) {
  Ensemble e(3, 3);
  e.Connect();
  std::vector<std::string> paths;
  sim::RunTask(e.sim, [](Ensemble& en,
                         std::vector<std::string>& out) -> sim::Task<void> {
    auto base = co_await en.client(0).Create("/ctr", {});
    CO_ASSERT_TRUE(base.ok());
    for (int i = 0; i < 9; ++i) {
      auto r = co_await en.client(static_cast<std::size_t>(i % 3))
                   .Create("/ctr/c-", {}, CreateMode::kPersistentSequential);
      CO_ASSERT_TRUE(r.ok());
      out.push_back(*r);
    }
  }(e, paths));
  // All 9 names distinct and dense 0..8.
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  ASSERT_EQ(paths.size(), 9u);
  EXPECT_EQ(paths.front(), "/ctr/c-0000000000");
  EXPECT_EQ(paths.back(), "/ctr/c-0000000008");
}

TEST(EnsembleTest, VersionConflictSurfaces) {
  Ensemble e(3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client().Create("/v", Bytes("a"));
    auto s1 = co_await en.client().Set("/v", Bytes("b"), 0);
    CO_ASSERT_TRUE(s1.ok());
    auto s2 = co_await en.client().Set("/v", Bytes("c"), 0);
    EXPECT_EQ(s2.code(), StatusCode::kBadVersion);
  }(e));
}

TEST(EnsembleTest, MultiIsAtomicAcrossReplicas) {
  Ensemble e(3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client().Create("/src", Bytes("f"));
    std::vector<Op> rename;
    rename.push_back(Op::Create("/dst", Bytes("f")));
    rename.push_back(Op::Delete("/src"));
    auto r = co_await en.client().Multi(std::move(rename));
    CO_ASSERT_TRUE(r.ok());

    std::vector<Op> failing;
    failing.push_back(Op::Create("/x", {}));
    failing.push_back(Op::Delete("/ghost"));
    auto r2 = co_await en.client().Multi(std::move(failing));
    EXPECT_FALSE(r2.ok());
    auto x = co_await en.client().Exists("/x");
    EXPECT_EQ(x.code(), StatusCode::kNotFound);
  }(e));
  e.Drain();
  EXPECT_TRUE(e.Converged());
}

TEST(EnsembleTest, WatchFiresOnDataChange) {
  Ensemble e(3, 2);
  e.Connect();
  std::vector<WatchEvent> events;
  e.client(0).SetWatchHandler(
      [&](const WatchEvent& ev) { events.push_back(ev); });
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client(0).Create("/w", Bytes("0"));
    auto got = co_await en.client(0).Get("/w", /*watch=*/true);
    CO_ASSERT_TRUE(got.ok());
    (void)co_await en.client(1).Set("/w", Bytes("1"));
  }(e));
  e.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, WatchEventType::kNodeDataChanged);
  EXPECT_EQ(events[0].path, "/w");
}

TEST(EnsembleTest, WatchIsOneShot) {
  Ensemble e(3, 2);
  e.Connect();
  int fired = 0;
  e.client(0).SetWatchHandler([&](const WatchEvent&) { ++fired; });
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client(0).Create("/w", Bytes("0"));
    (void)co_await en.client(0).Get("/w", /*watch=*/true);
    (void)co_await en.client(1).Set("/w", Bytes("1"));
    (void)co_await en.client(1).Set("/w", Bytes("2"));
  }(e));
  e.Drain();
  EXPECT_EQ(fired, 1);
}

TEST(EnsembleTest, ChildWatchFiresOnCreate) {
  Ensemble e(3, 2);
  e.Connect();
  std::vector<WatchEvent> events;
  e.client(0).SetWatchHandler(
      [&](const WatchEvent& ev) { events.push_back(ev); });
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client(0).Create("/dir", {});
    (void)co_await en.client(0).GetChildren("/dir", /*watch=*/true);
    (void)co_await en.client(1).Create("/dir/kid", {});
  }(e));
  e.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, WatchEventType::kNodeChildrenChanged);
  EXPECT_EQ(events[0].path, "/dir");
}

TEST(EnsembleTest, EphemeralsVanishOnSessionClose) {
  Ensemble e(3, 2);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client(0).Create("/locks", {});
    auto r = co_await en.client(1).Create("/locks/owner", Bytes("me"),
                                          CreateMode::kEphemeral);
    CO_ASSERT_TRUE(r.ok());
    auto closed = co_await en.client(1).Close();
    EXPECT_TRUE(closed.ok());
    auto exists = co_await en.client(0).Exists("/locks/owner");
    EXPECT_EQ(exists.code(), StatusCode::kNotFound);
  }(e));
}

TEST(EnsembleTest, SingleServerEnsembleWorks) {
  Ensemble e(1);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    auto r = co_await en.client().Create("/solo", Bytes("x"));
    CO_ASSERT_TRUE(r.ok());
    auto got = co_await en.client().Get("/solo");
    EXPECT_TRUE(got.ok());
  }(e));
}

TEST(EnsembleTest, FollowerCrashQuorumSurvives) {
  Ensemble e(3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client().Create("/before", {});
    en.net.node(en.config.servers[2]).Crash();  // a follower
    auto r = co_await en.client().Create("/after", {});
    EXPECT_TRUE(r.ok()) << r.status();  // quorum 2/3 still alive
  }(e));
}

TEST(EnsembleTest, MajorityLossBlocksWrites) {
  Ensemble e(3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    en.net.node(en.config.servers[1]).Crash();
    en.net.node(en.config.servers[2]).Crash();
    auto r = co_await en.client().Create("/nope", {});
    EXPECT_FALSE(r.ok());  // no quorum: kUnavailable/kTimeout after retries
    // Reads from the surviving replica still work (stale-tolerant reads).
    auto stat = co_await en.client().Exists("/");
    EXPECT_TRUE(stat.ok());
  }(e));
}

TEST(EnsembleTest, LeaderCrashElectionRecovers) {
  Ensemble e(3, 1, /*failure_detection=*/true);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client().Create("/pre", Bytes("1"));
    en.net.node(en.config.servers[0]).Crash();  // the leader
    // Allow detection + election, then write again (client fails over).
    co_await en.sim.Delay(sim::Sec(1));
    auto r = co_await en.client().Create("/post", Bytes("2"));
    EXPECT_TRUE(r.ok()) << r.status();
  }(e));
  // Exactly one of the survivors leads.
  int leaders = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (e.servers[i]->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  e.Drain(sim::Sec(1));
  EXPECT_TRUE(e.Converged());
}

TEST(EnsembleTest, CrashedFollowerRejoinsAndSyncs) {
  Ensemble e(3, 1, /*failure_detection=*/true);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client().Create("/a", {});
    auto& node = en.net.node(en.config.servers[2]);
    auto snapshot = en.servers[2]->TakeSnapshot();
    node.Crash();
    (void)co_await en.client().Create("/b", {});
    (void)co_await en.client().Create("/c", {});
    node.Restart();
    CO_ASSERT_TRUE(en.servers[2]->RestoreSnapshot(snapshot).ok());
    en.servers[2]->OnRestart();
    co_await en.sim.Delay(sim::Sec(2));
  }(e));
  EXPECT_TRUE(e.Converged());
  EXPECT_TRUE(e.servers[2]->db().tree().Exists("/b"));
  EXPECT_TRUE(e.servers[2]->db().tree().Exists("/c"));
}

// The Fig. 1 consistency race, resolved at the coordination layer: two
// clients race mkdir(d1) and rename(d1->d2); whatever the interleaving, all
// replicas agree on a single outcome.
TEST(EnsembleTest, Figure1RaceIsLinearized) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Ensemble e(3, 2, false, seed);
    e.Connect();
    sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
      (void)co_await en.client(0).Create("/d1", {});
      co_return;
    }(e));
    // Race: client0 re-creates /d1 while client1 renames /d1 -> /d2.
    bool done0 = false, done1 = false;
    {
      sim::CurrentSimulationScope scope(&e.sim);
      e.sim.Spawn([](Ensemble& en, bool& done) -> sim::Task<void> {
        std::vector<Op> mv;
        mv.push_back(Op::Create("/d2", {}));
        mv.push_back(Op::Delete("/d1"));
        (void)co_await en.client(1).Multi(std::move(mv));
        done = true;
      }(e, done1));
      e.sim.Spawn([](Ensemble& en, bool& done) -> sim::Task<void> {
        (void)co_await en.client(0).Create("/d1", {});
        done = true;
      }(e, done0));
    }
    e.sim.Run();
    EXPECT_TRUE(done0 && done1);
    EXPECT_TRUE(e.Converged()) << "seed " << seed;
    // /d2 must exist; /d1 exists iff the re-create happened after the move
    // — but *every* replica agrees.
    const auto& tree = e.servers[0]->db().tree();
    EXPECT_TRUE(tree.Exists("/d2"));
  }
}

// Many concurrent processes per client node, as in mdtest: a sequential
// client is RTT-bound and would hide server-side effects.
double MeasureRate(Ensemble& e, int procs_per_client, int ops_per_proc,
                   bool reads) {
  if (reads) {
    sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
      (void)co_await en.client(0).Create("/hot", Bytes("x"));
    }(e));
  }
  const auto start = e.sim.now();
  const std::size_t n_clients = e.clients.size();
  sim::RunTask(e.sim, [](Ensemble& en, std::size_t nc, int procs, int ops,
                         bool rd) -> sim::Task<void> {
    sim::Barrier done(en.sim, nc * static_cast<std::size_t>(procs) + 1);
    for (std::size_t c = 0; c < nc; ++c) {
      for (int p = 0; p < procs; ++p) {
        en.sim.Spawn([](Ensemble& e2, std::size_t idx, int pid, int n,
                        bool rd2, sim::Barrier b) -> sim::Task<void> {
          for (int i = 0; i < n; ++i) {
            if (rd2) {
              (void)co_await e2.client(idx).Get("/hot");
            } else {
              (void)co_await e2.client(idx).Create(
                  "/c" + std::to_string(idx) + "-" + std::to_string(pid) +
                      "-" + std::to_string(i),
                  {});
            }
          }
          co_await b.Arrive();
        }(en, c, p, ops, rd, done));
      }
    }
    co_await done.Arrive();
  }(e, n_clients, procs_per_client, ops_per_proc, reads));
  const double secs = static_cast<double>(e.sim.now() - start) / sim::kSecond;
  return static_cast<double>(n_clients) * procs_per_client * ops_per_proc /
         secs;
}

TEST(EnsembleTest, ReadThroughputScalesWithServers) {
  // Mini Fig. 7d: aggregate read rate with 4 servers exceeds 1 server.
  auto measure = [](std::size_t n_servers) {
    Ensemble e(n_servers, 4);
    e.Connect();
    return MeasureRate(e, /*procs_per_client=*/16, /*ops_per_proc=*/50,
                       /*reads=*/true);
  };
  const double rate1 = measure(1);
  const double rate4 = measure(4);
  EXPECT_GT(rate4, rate1 * 2.0);
}

TEST(EnsembleTest, WriteThroughputFallsWithServers) {
  // Mini Fig. 7a: create rate with 8 servers is below 1 server.
  auto measure = [](std::size_t n_servers) {
    Ensemble e(n_servers, 4);
    e.Connect();
    return MeasureRate(e, /*procs_per_client=*/16, /*ops_per_proc=*/25,
                       /*reads=*/false);
  };
  const double rate1 = measure(1);
  const double rate8 = measure(8);
  EXPECT_GT(rate1, rate8 * 1.5);
}

// ---------------------------------------------------------- group commit ----

TEST(EnsembleTest, GroupCommitConvergesAndCommitsAll) {
  Ensemble e(3, 4, /*failure_detection=*/false, /*seed=*/1,
             /*group_commit=*/true);
  e.Connect();
  (void)MeasureRate(e, /*procs_per_client=*/8, /*ops_per_proc=*/10,
                    /*reads=*/false);
  e.Drain(sim::Sec(1));
  EXPECT_TRUE(e.Converged());
  // Every concurrent create landed exactly once on every replica.
  for (std::size_t c = 0; c < 4; ++c) {
    for (int p = 0; p < 8; ++p) {
      for (int i = 0; i < 10; ++i) {
        const std::string path = "/c" + std::to_string(c) + "-" +
                                 std::to_string(p) + "-" + std::to_string(i);
        EXPECT_TRUE(e.servers[2]->db().tree().Exists(path)) << path;
      }
    }
  }
}

TEST(EnsembleTest, GroupCommitImprovesConcurrentWriteRate) {
  // The acceptance check: with many concurrent writers, batching the
  // per-follower replication work and the quorum round lifts create
  // throughput well above the one-proposal-per-op pipeline.
  auto measure = [](bool group_commit) {
    Ensemble e(3, 4, /*failure_detection=*/false, /*seed=*/1, group_commit);
    e.Connect();
    return MeasureRate(e, /*procs_per_client=*/32, /*ops_per_proc=*/25,
                       /*reads=*/false);
  };
  const double rate_off = measure(false);
  const double rate_on = measure(true);
  EXPECT_GT(rate_on, rate_off * 1.3);
}

TEST(EnsembleTest, GroupCommitWritesThroughFollowerWork) {
  Ensemble e(3, 2, /*failure_detection=*/false, /*seed=*/1,
             /*group_commit=*/true);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    // Client 1 is attached to follower 1; its writes are forwarded to the
    // leader and enter the same batch queue.
    auto r = co_await en.client(1).Create("/via-follower", Bytes("x"));
    CO_ASSERT_TRUE(r.ok());
    auto got = co_await en.client(1).Get("/via-follower");
    CO_ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->data, Bytes("x"));
  }(e));
  e.Drain();
  EXPECT_TRUE(e.Converged());
}

TEST(EnsembleTest, GroupCommitLeaderCrashElectionRecovers) {
  Ensemble e(3, 1, /*failure_detection=*/true, /*seed=*/1,
             /*group_commit=*/true);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    (void)co_await en.client().Create("/pre", Bytes("1"));
    en.net.node(en.config.servers[0]).Crash();  // the leader
    co_await en.sim.Delay(sim::Sec(1));
    auto r = co_await en.client().Create("/post", Bytes("2"));
    EXPECT_TRUE(r.ok()) << r.status();
  }(e));
  int leaders = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (e.servers[i]->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  e.Drain(sim::Sec(1));
  EXPECT_TRUE(e.Converged());
}

}  // namespace
}  // namespace dufs::zk
