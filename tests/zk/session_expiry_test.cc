// Session expiry: a client that stops heartbeating (crashed node) loses its
// session; the ensemble replicates the CloseSession, deleting its
// ephemerals everywhere. A heartbeating client survives indefinitely.
#include <gtest/gtest.h>

#include <memory>

#include "net/rpc.h"
#include "sim/task.h"
#include "testutil/co_assert.h"
#include "zk/client.h"
#include "zk/server.h"

namespace dufs::zk {
namespace {

std::vector<std::uint8_t> Bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

struct ExpiryEnsemble {
  sim::Simulation sim;
  net::Network net{sim};
  ZkEnsembleConfig config;
  std::vector<std::unique_ptr<net::RpcEndpoint>> server_eps;
  std::vector<std::unique_ptr<ZkServer>> servers;
  std::vector<net::NodeId> client_nodes;
  std::vector<std::unique_ptr<net::RpcEndpoint>> client_eps;
  std::vector<std::unique_ptr<ZkClient>> clients;

  explicit ExpiryEnsemble(sim::Duration session_timeout) {
    config.session_timeout = session_timeout;
    for (int i = 0; i < 3; ++i) {
      config.servers.push_back(net.AddNode("zk" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < 3; ++i) {
      server_eps.push_back(
          std::make_unique<net::RpcEndpoint>(net, config.servers[i]));
      servers.push_back(
          std::make_unique<ZkServer>(*server_eps[i], config, i));
      servers[i]->Start();
    }
    for (int i = 0; i < 2; ++i) {
      client_nodes.push_back(net.AddNode("client" + std::to_string(i)));
      client_eps.push_back(
          std::make_unique<net::RpcEndpoint>(net, client_nodes.back()));
      ZkClientConfig cc;
      cc.servers = config.servers;
      cc.attach_index = static_cast<std::size_t>(i);
      clients.push_back(std::make_unique<ZkClient>(*client_eps[i], cc));
    }
    sim::RunTask(sim, [](ExpiryEnsemble& e) -> sim::Task<void> {
      for (auto& c : e.clients) {
        CO_ASSERT_OK(co_await c->Connect());
      }
      CO_ASSERT_OK(
          (co_await e.clients[0]->Create("/locks", {})).status());
    }(*this));
  }
  ~ExpiryEnsemble() { sim.Shutdown(); }
};

TEST(SessionExpiryTest, SilentSessionLosesEphemerals) {
  ExpiryEnsemble e(sim::Ms(300));
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    auto created = co_await en.clients[1]->Create(
        "/locks/holder", Bytes("c1"), CreateMode::kEphemeral);
    CO_ASSERT_TRUE(created.ok());
  }(e));
  // Client 1 "crashes": no more requests, no heartbeats.
  e.net.node(e.client_nodes[1]).Crash();
  e.sim.Run(e.sim.now() + sim::Sec(1));
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    auto exists = co_await en.clients[0]->Exists("/locks/holder");
    EXPECT_EQ(exists.code(), StatusCode::kNotFound);  // expired + cleaned
  }(e));
}

TEST(SessionExpiryTest, HeartbeatingSessionSurvives) {
  ExpiryEnsemble e(sim::Ms(300));
  e.clients[1]->StartHeartbeats(sim::Ms(100));
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    auto created = co_await en.clients[1]->Create(
        "/locks/holder", Bytes("c1"), CreateMode::kEphemeral);
    CO_ASSERT_TRUE(created.ok());
  }(e));
  // Idle for far longer than the timeout — heartbeats keep it alive.
  e.sim.Run(e.sim.now() + sim::Sec(2));
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    auto exists = co_await en.clients[0]->Exists("/locks/holder");
    EXPECT_TRUE(exists.ok());
  }(e));
  // Stop heartbeating (crash) -> the ephemeral eventually vanishes.
  e.net.node(e.client_nodes[1]).Crash();
  e.sim.Run(e.sim.now() + sim::Sec(1));
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    auto exists = co_await en.clients[0]->Exists("/locks/holder");
    EXPECT_EQ(exists.code(), StatusCode::kNotFound);
  }(e));
}

TEST(SessionExpiryTest, ActiveRequestsCountAsActivity) {
  ExpiryEnsemble e(sim::Ms(300));
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    auto created = co_await en.clients[1]->Create(
        "/locks/holder", Bytes("x"), CreateMode::kEphemeral);
    CO_ASSERT_TRUE(created.ok());
    // Keep issuing reads (no heartbeats): activity refreshes the session.
    for (int i = 0; i < 10; ++i) {
      co_await en.sim.Delay(sim::Ms(200));
      auto exists = co_await en.clients[1]->Exists("/locks/holder");
      EXPECT_TRUE(exists.ok()) << "iteration " << i;
    }
  }(e));
}

TEST(SessionExpiryTest, DisabledByDefault) {
  ExpiryEnsemble e(/*session_timeout=*/0);
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    auto created = co_await en.clients[1]->Create(
        "/locks/holder", Bytes("x"), CreateMode::kEphemeral);
    CO_ASSERT_TRUE(created.ok());
  }(e));
  e.net.node(e.client_nodes[1]).Crash();
  e.sim.Run(e.sim.now() + sim::Sec(3));
  sim::RunTask(e.sim, [](ExpiryEnsemble& en) -> sim::Task<void> {
    // No expiry machinery: the ephemeral stays (session-less mode used by
    // the perf benches).
    auto exists = co_await en.clients[0]->Exists("/locks/holder");
    EXPECT_TRUE(exists.ok());
  }(e));
}

}  // namespace
}  // namespace dufs::zk
