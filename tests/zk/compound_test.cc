// Compound metadata ops (DESIGN.md §13): proto round-trips, server-side
// resolution against a populated Database, and ensemble-level semantics
// (replication, concurrent delete-under-resolve, per-component watches).
#include <gtest/gtest.h>

#include <memory>

#include "net/rpc.h"
#include "sim/gather.h"
#include "sim/task.h"
#include "testutil/co_assert.h"
#include "wire/buffer.h"
#include "zk/client.h"
#include "zk/database.h"
#include "zk/server.h"

namespace dufs::zk {
namespace {

std::vector<std::uint8_t> Bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// The client layer tags directory records with a leading 'D' here — any
// nonzero byte works; the server only compares data[0] against Op::dir_tag.
constexpr std::uint8_t kTag = 'D';
std::vector<std::uint8_t> DirData() { return Bytes("Ddir"); }
std::vector<std::uint8_t> FileData(std::string_view v = "Ffile") {
  return Bytes(v);
}

// ------------------------------------------------------ proto round-trips --

template <typename T, typename Decoder>
T RoundTrip(const T& in, Decoder decode) {
  wire::BufferWriter w;
  in.Encode(w);
  auto bytes = w.Take();
  wire::BufferReader r(bytes);
  auto out = decode(r);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(r.remaining(), 0u);
  return std::move(*out);
}

TEST(CompoundProtoTest, OpRoundTripAllFourTypes) {
  auto resolve = RoundTrip(Op::ResolvePath("/a/b/c", /*watch=*/true, kTag),
                           Op::Decode);
  EXPECT_EQ(resolve.type, OpType::kResolvePath);
  EXPECT_EQ(resolve.path, "/a/b/c");
  EXPECT_TRUE(resolve.watch);
  EXPECT_EQ(resolve.dir_tag, kTag);

  auto readdir = RoundTrip(Op::ReadDirPlus("/a", /*watch=*/false, kTag),
                           Op::Decode);
  EXPECT_EQ(readdir.type, OpType::kReadDirPlus);
  EXPECT_FALSE(readdir.watch);
  EXPECT_EQ(readdir.dir_tag, kTag);

  auto create = RoundTrip(
      Op::ResolveCreate("/a/b/f", FileData(), CreateMode::kPersistent, kTag,
                        /*watch=*/true),
      Op::Decode);
  EXPECT_EQ(create.type, OpType::kResolveCreate);
  EXPECT_EQ(create.data, FileData());
  EXPECT_EQ(create.mode, CreateMode::kPersistent);
  EXPECT_TRUE(create.watch);

  auto del = RoundTrip(Op::ResolveDelete("/a/b/f", 7, kTag, /*watch=*/false),
                       Op::Decode);
  EXPECT_EQ(del.type, OpType::kResolveDelete);
  EXPECT_EQ(del.version, 7);
  EXPECT_EQ(del.dir_tag, kTag);
  EXPECT_FALSE(del.watch);

  // Write classification: compound reads stay reads, writes replicate.
  EXPECT_FALSE(IsWrite(OpType::kResolvePath));
  EXPECT_FALSE(IsWrite(OpType::kReadDirPlus));
  EXPECT_TRUE(IsWrite(OpType::kResolveCreate));
  EXPECT_TRUE(IsWrite(OpType::kResolveDelete));
  for (auto t : {OpType::kResolvePath, OpType::kReadDirPlus,
                 OpType::kResolveCreate, OpType::kResolveDelete}) {
    EXPECT_TRUE(IsCompound(t));
  }
  EXPECT_FALSE(IsCompound(OpType::kCreate));
}

TEST(CompoundProtoTest, LegacyOpDefaultsSurviveRoundTrip) {
  auto op = RoundTrip(Op::Create("/x", FileData()), Op::Decode);
  EXPECT_EQ(op.dir_tag, 0);
  EXPECT_FALSE(op.watch);
}

TEST(CompoundProtoTest, OpResultRoundTripWithPrefixAndEntries) {
  OpResult in;
  in.code = StatusCode::kNotFound;
  in.resolved_depth = 2;
  ResolvedNode a;
  a.name = "a";
  a.stat.czxid = 5;
  a.stat.version = 3;
  a.data = DirData();
  ResolvedNode b;
  b.name = "b";
  b.stat.num_children = 4;
  b.data = DirData();
  in.prefix = {a, b};
  ResolvedNode child;
  child.name = "f";
  child.stat.mzxid = 9;
  child.data = FileData();
  in.entries = {child};

  auto out = RoundTrip(in, OpResult::Decode);
  EXPECT_EQ(out.code, StatusCode::kNotFound);
  EXPECT_EQ(out.resolved_depth, 2u);
  ASSERT_EQ(out.prefix.size(), 2u);
  EXPECT_EQ(out.prefix[0].name, "a");
  EXPECT_EQ(out.prefix[0].stat.czxid, 5);
  EXPECT_EQ(out.prefix[0].stat.version, 3);
  EXPECT_EQ(out.prefix[0].data, DirData());
  EXPECT_EQ(out.prefix[1].name, "b");
  EXPECT_EQ(out.prefix[1].stat.num_children, 4);
  ASSERT_EQ(out.entries.size(), 1u);
  EXPECT_EQ(out.entries[0].name, "f");
  EXPECT_EQ(out.entries[0].stat.mzxid, 9);
  EXPECT_EQ(out.entries[0].data, FileData());
}

TEST(CompoundProtoTest, OpTypeNamesAreStable) {
  EXPECT_STREQ(OpTypeName(OpType::kResolvePath), "resolvePath");
  EXPECT_STREQ(OpTypeName(OpType::kReadDirPlus), "readDirPlus");
  EXPECT_STREQ(OpTypeName(OpType::kResolveCreate), "resolveCreate");
  EXPECT_STREQ(OpTypeName(OpType::kResolveDelete), "resolveDelete");
}

// ------------------------------------------------ database-level behavior --

class CompoundDatabaseTest : public ::testing::Test {
 protected:
  Database db_;
  Zxid zxid_ = 0;

  AppliedTxn Apply(Op op, SessionId session = 1) {
    Txn txn;
    txn.session = session;
    txn.op = std::move(op);
    ++zxid_;
    return db_.Apply(txn, zxid_, zxid_ * 100);
  }

  // Builds /a/b/c (dirs) with file /a/b/c/f.
  void BuildChain() {
    ASSERT_TRUE(Apply(Op::Create("/a", DirData())).result.ok());
    ASSERT_TRUE(Apply(Op::Create("/a/b", DirData())).result.ok());
    ASSERT_TRUE(Apply(Op::Create("/a/b/c", DirData())).result.ok());
    ASSERT_TRUE(Apply(Op::Create("/a/b/c/f", FileData())).result.ok());
  }
};

TEST_F(CompoundDatabaseTest, ResolveDeepChainHit) {
  BuildChain();
  auto res = db_.Read(Op::ResolvePath("/a/b/c/f", false, kTag));
  EXPECT_EQ(res.code, StatusCode::kOk);
  EXPECT_EQ(res.resolved_depth, 4u);
  ASSERT_EQ(res.prefix.size(), 3u);  // terminal excluded
  EXPECT_EQ(res.prefix[0].name, "a");
  EXPECT_EQ(res.prefix[1].name, "b");
  EXPECT_EQ(res.prefix[2].name, "c");
  EXPECT_EQ(res.prefix[2].data, DirData());
  EXPECT_EQ(res.data, FileData());
  EXPECT_GT(res.stat.czxid, 0);
}

TEST_F(CompoundDatabaseTest, ResolvePartialMissReportsPrefixDepth) {
  BuildChain();
  auto res = db_.Read(Op::ResolvePath("/a/b/x/y", false, kTag));
  EXPECT_EQ(res.code, StatusCode::kNotFound);
  EXPECT_EQ(res.resolved_depth, 2u);
  ASSERT_EQ(res.prefix.size(), 2u);  // exactly the components that exist
  EXPECT_EQ(res.prefix[0].name, "a");
  EXPECT_EQ(res.prefix[1].name, "b");
}

TEST_F(CompoundDatabaseTest, ResolveInteriorFileIsNotADirectory) {
  BuildChain();
  auto res = db_.Read(Op::ResolvePath("/a/b/c/f/deeper", false, kTag));
  EXPECT_EQ(res.code, StatusCode::kNotADirectory);
  EXPECT_EQ(res.resolved_depth, 4u);  // offender included
  ASSERT_EQ(res.prefix.size(), 4u);
  EXPECT_EQ(res.prefix.back().name, "f");
  // Without the tag the guard is off: plain existence walk -> the file has
  // no children, so the next component is simply absent.
  auto untagged = db_.Read(Op::ResolvePath("/a/b/c/f/deeper", false, 0));
  EXPECT_EQ(untagged.code, StatusCode::kNotFound);
  EXPECT_EQ(untagged.resolved_depth, 4u);
}

TEST_F(CompoundDatabaseTest, ResolveRootHasNoComponents) {
  auto res = db_.Read(Op::ResolvePath("/", false, kTag));
  EXPECT_EQ(res.code, StatusCode::kOk);
  EXPECT_EQ(res.resolved_depth, 0u);
  EXPECT_TRUE(res.prefix.empty());
}

TEST_F(CompoundDatabaseTest, ReadDirPlusListsEntriesWithStatAndData) {
  BuildChain();
  ASSERT_TRUE(Apply(Op::Create("/a/b/c/g", FileData("Fother"))).result.ok());
  auto res = db_.Read(Op::ReadDirPlus("/a/b/c", false, kTag));
  EXPECT_EQ(res.code, StatusCode::kOk);
  EXPECT_EQ(res.resolved_depth, 3u);
  ASSERT_EQ(res.entries.size(), 2u);  // sorted map order
  EXPECT_EQ(res.entries[0].name, "f");
  EXPECT_EQ(res.entries[0].data, FileData());
  EXPECT_EQ(res.entries[1].name, "g");
  EXPECT_EQ(res.entries[1].data, FileData("Fother"));
  EXPECT_GT(res.entries[0].stat.czxid, 0);
}

TEST_F(CompoundDatabaseTest, ReadDirPlusOnFileIsNotADirectory) {
  BuildChain();
  auto res = db_.Read(Op::ReadDirPlus("/a/b/c/f", false, kTag));
  EXPECT_EQ(res.code, StatusCode::kNotADirectory);
  // Terminal offender: the full path resolved, so the depth covers it and
  // its stat/data still ride back for cache seeding.
  EXPECT_EQ(res.resolved_depth, 4u);
  EXPECT_EQ(res.data, FileData());
  EXPECT_TRUE(res.entries.empty());
}

TEST_F(CompoundDatabaseTest, ResolveCreateSucceedsAndUpdatesParentStat) {
  BuildChain();
  auto applied = Apply(Op::ResolveCreate("/a/b/c/new", FileData("Fnew"),
                                         CreateMode::kPersistent, kTag,
                                         false));
  EXPECT_EQ(applied.result.code, StatusCode::kOk);
  EXPECT_EQ(applied.result.created_path, "/a/b/c/new");
  EXPECT_EQ(applied.result.resolved_depth, 4u);
  ASSERT_EQ(applied.result.prefix.size(), 3u);
  // The parent's stat in the prefix is post-create: both children visible.
  EXPECT_EQ(applied.result.prefix[2].stat.num_children, 2);
  EXPECT_GT(applied.result.stat.czxid, 0);
  // Triggers match a plain create.
  ASSERT_EQ(applied.triggers.size(), 2u);
  EXPECT_EQ(applied.triggers[0].type, WatchEventType::kNodeCreated);
  EXPECT_EQ(applied.triggers[0].path, "/a/b/c/new");
  EXPECT_EQ(applied.triggers[1].type, WatchEventType::kNodeChildrenChanged);
  EXPECT_EQ(applied.triggers[1].path, "/a/b/c");
  EXPECT_TRUE(db_.tree().Exists("/a/b/c/new"));
}

TEST_F(CompoundDatabaseTest, ResolveCreateMissingAncestorFailsWithPrefix) {
  BuildChain();
  auto applied = Apply(Op::ResolveCreate("/a/nope/deep/new", FileData(),
                                         CreateMode::kPersistent, kTag,
                                         false));
  EXPECT_EQ(applied.result.code, StatusCode::kNotFound);
  EXPECT_EQ(applied.result.resolved_depth, 1u);
  ASSERT_EQ(applied.result.prefix.size(), 1u);
  EXPECT_EQ(applied.result.prefix[0].name, "a");
  EXPECT_TRUE(applied.triggers.empty());
}

TEST_F(CompoundDatabaseTest, ResolveCreateExistingReturnsCurrentNode) {
  BuildChain();
  auto applied = Apply(Op::ResolveCreate("/a/b/c/f", FileData("Floser"),
                                         CreateMode::kPersistent, kTag,
                                         false));
  EXPECT_EQ(applied.result.code, StatusCode::kAlreadyExists);
  EXPECT_EQ(applied.result.resolved_depth, 4u);
  EXPECT_EQ(applied.result.prefix.size(), 3u);
  // The raced-against node's record rides back — the freshest view the
  // losing client can seed.
  EXPECT_EQ(applied.result.data, FileData());
}

TEST_F(CompoundDatabaseTest, ResolveCreateFileParentIsNotADirectory) {
  BuildChain();
  auto applied = Apply(Op::ResolveCreate("/a/b/c/f/x", FileData(),
                                         CreateMode::kPersistent, kTag,
                                         false));
  EXPECT_EQ(applied.result.code, StatusCode::kNotADirectory);
  EXPECT_EQ(applied.result.resolved_depth, 4u);
  EXPECT_FALSE(db_.tree().Exists("/a/b/c/f/x"));
}

TEST_F(CompoundDatabaseTest, ResolveDeleteReturnsPreDeleteRecord) {
  BuildChain();
  auto applied =
      Apply(Op::ResolveDelete("/a/b/c/f", kAnyVersion, kTag, false));
  EXPECT_EQ(applied.result.code, StatusCode::kOk);
  // Depth excludes the deleted terminal; data carries its last record.
  EXPECT_EQ(applied.result.resolved_depth, 3u);
  EXPECT_EQ(applied.result.prefix.size(), 3u);
  EXPECT_EQ(applied.result.data, FileData());
  EXPECT_EQ(applied.result.prefix[2].stat.num_children, 0);
  EXPECT_FALSE(db_.tree().Exists("/a/b/c/f"));
  ASSERT_EQ(applied.triggers.size(), 2u);
  EXPECT_EQ(applied.triggers[0].type, WatchEventType::kNodeDeleted);
}

TEST_F(CompoundDatabaseTest, ResolveDeleteVersionMismatchKeepsNode) {
  BuildChain();
  auto applied = Apply(Op::ResolveDelete("/a/b/c/f", 99, kTag, false));
  EXPECT_EQ(applied.result.code, StatusCode::kBadVersion);
  EXPECT_EQ(applied.result.resolved_depth, 4u);
  EXPECT_TRUE(db_.tree().Exists("/a/b/c/f"));
}

TEST_F(CompoundDatabaseTest, ResolveDeleteOnDirectoryIsIsADirectory) {
  BuildChain();
  auto applied =
      Apply(Op::ResolveDelete("/a/b/c", kAnyVersion, kTag, false));
  EXPECT_EQ(applied.result.code, StatusCode::kIsADirectory);
  EXPECT_TRUE(db_.tree().Exists("/a/b/c"));
}

TEST_F(CompoundDatabaseTest, CompoundOpsRejectedInsideMulti) {
  BuildChain();
  Txn txn;
  txn.session = 1;
  txn.op.type = OpType::kMulti;
  txn.multi_ops.push_back(Op::ResolveCreate("/a/x", FileData(),
                                            CreateMode::kPersistent, kTag,
                                            false));
  ++zxid_;
  auto applied = db_.Apply(txn, zxid_, zxid_ * 100);
  EXPECT_EQ(applied.result.code, StatusCode::kInvalidArgument);
}

TEST_F(CompoundDatabaseTest, CompoundWritesReplayDeterministically) {
  // Two replicas applying the same txn stream (including failures) must
  // land on identical fingerprints — compound writes ride Apply untouched.
  Database other;
  std::vector<Op> ops;
  ops.push_back(Op::Create("/a", DirData()));
  ops.push_back(Op::ResolveCreate("/a/f", FileData(), CreateMode::kPersistent,
                                  kTag, false));
  ops.push_back(Op::ResolveCreate("/a/f", FileData(), CreateMode::kPersistent,
                                  kTag, false));  // kAlreadyExists
  ops.push_back(Op::ResolveCreate("/a/missing/f", FileData(),
                                  CreateMode::kPersistent, kTag, false));
  ops.push_back(Op::ResolveDelete("/a/f", kAnyVersion, kTag, false));
  ops.push_back(Op::ResolveDelete("/a/f", kAnyVersion, kTag, false));  // gone
  Zxid z = 0;
  for (const auto& op : ops) {
    Txn txn;
    txn.session = 1;
    txn.op = op;
    ++z;
    auto a = db_.Apply(txn, z, z * 100);
    auto b = other.Apply(txn, z, z * 100);
    EXPECT_EQ(a.result.code, b.result.code);
  }
  EXPECT_EQ(db_.Fingerprint(), other.Fingerprint());
}

// ------------------------------------------------- ensemble-level checks --

struct Ensemble {
  sim::Simulation sim;
  net::Network net{sim};
  ZkEnsembleConfig config;
  std::vector<std::unique_ptr<net::RpcEndpoint>> server_eps;
  std::vector<std::unique_ptr<ZkServer>> servers;
  std::vector<std::unique_ptr<net::RpcEndpoint>> client_eps;
  std::vector<std::unique_ptr<ZkClient>> clients;

  explicit Ensemble(std::size_t n_servers, std::size_t n_clients = 1,
                    std::uint64_t seed = 1)
      : sim(seed) {
    for (std::size_t i = 0; i < n_servers; ++i) {
      config.servers.push_back(net.AddNode("zk" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n_servers; ++i) {
      server_eps.push_back(
          std::make_unique<net::RpcEndpoint>(net, config.servers[i]));
      servers.push_back(std::make_unique<ZkServer>(*server_eps[i], config, i));
      servers[i]->Start();
    }
    for (std::size_t i = 0; i < n_clients; ++i) {
      const auto node = net.AddNode("client" + std::to_string(i));
      client_eps.push_back(std::make_unique<net::RpcEndpoint>(net, node));
      ZkClientConfig cc;
      cc.servers = config.servers;
      cc.attach_index = i;
      clients.push_back(std::make_unique<ZkClient>(*client_eps[i], cc));
    }
  }

  ~Ensemble() { sim.Shutdown(); }

  ZkClient& client(std::size_t i = 0) { return *clients[i]; }

  void Connect() {
    sim::RunTask(sim, [](Ensemble& e) -> sim::Task<void> {
      for (auto& c : e.clients) {
        auto st = co_await c->Connect();
        EXPECT_TRUE(st.ok()) << st;
      }
    }(*this));
  }

  void Drain(sim::Duration d = sim::Ms(50)) { sim.Run(sim.now() + d); }

  bool Converged() {
    std::uint64_t fp = 0;
    bool first = true;
    for (auto& s : servers) {
      if (first) {
        fp = s->db().Fingerprint();
        first = false;
      } else if (s->db().Fingerprint() != fp) {
        return false;
      }
    }
    return true;
  }
};

sim::Task<void> BuildChain(ZkClient& c) {  // dufs-lint: allow(coro-ref-param)
  CO_ASSERT_OK((co_await c.Create("/a", DirData())).status());
  CO_ASSERT_OK((co_await c.Create("/a/b", DirData())).status());
  CO_ASSERT_OK((co_await c.Create("/a/b/c", DirData())).status());
  CO_ASSERT_OK((co_await c.Create("/a/b/c/f", FileData())).status());
}

TEST(CompoundEnsembleTest, ResolveCostsOneRequest) {
  Ensemble e(3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    co_await BuildChain(en.client());
    const auto before = en.client().requests_sent();
    auto res = co_await en.client().Resolve("/a/b/c/f", false, kTag);
    CO_ASSERT_OK(res.status());
    CO_ASSERT_TRUE(res->code == StatusCode::kOk);
    CO_ASSERT_TRUE(res->resolved_depth == 4u);
    CO_ASSERT_TRUE(res->prefix.size() == 3u);
    CO_ASSERT_TRUE(en.client().requests_sent() - before == 1u);
  }(e));
}

TEST(CompoundEnsembleTest, CompoundWritesReplicateToAllServers) {
  Ensemble e(3);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    co_await BuildChain(en.client());
    auto created = co_await en.client().ResolveCreate(
        "/a/b/c/g", FileData("Fg"), CreateMode::kPersistent, kTag, false);
    CO_ASSERT_OK(created.status());
    CO_ASSERT_TRUE(created->code == StatusCode::kOk);
    auto deleted =
        co_await en.client().ResolveDelete("/a/b/c/f", kAnyVersion, kTag,
                                           false);
    CO_ASSERT_OK(deleted.status());
    CO_ASSERT_TRUE(deleted->code == StatusCode::kOk);
  }(e));
  e.Drain();
  EXPECT_TRUE(e.Converged());
  for (auto& s : e.servers) {
    EXPECT_TRUE(s->db().tree().Exists("/a/b/c/g"));
    EXPECT_FALSE(s->db().tree().Exists("/a/b/c/f"));
  }
}

TEST(CompoundEnsembleTest, ConcurrentDeleteUnderResolve) {
  // A resolve racing a delete of its terminal must return one of the two
  // serialized outcomes (full hit or partial miss at the parent), never a
  // torn prefix — and the ensemble must stay convergent.
  Ensemble e(3, /*n_clients=*/2);
  e.Connect();
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    // The resolver builds the chain so its session server has applied it.
    co_await BuildChain(en.client(0));
    auto resolver = [](Ensemble& es) -> sim::Task<Result<OpResult>> {
      co_return co_await es.client(0).Resolve("/a/b/c/f", false, kTag);
    };
    auto deleter = [](Ensemble& es) -> sim::Task<Result<OpResult>> {
      co_return co_await es.client(1).ResolveDelete("/a/b/c/f", kAnyVersion,
                                                    kTag, false);
    };
    std::vector<sim::Task<Result<OpResult>>> tasks;
    tasks.push_back(resolver(en));
    tasks.push_back(deleter(en));
    auto results = co_await sim::WhenAll(std::move(tasks));
    CO_ASSERT_OK(results[0].status());
    CO_ASSERT_OK(results[1].status());
    CO_ASSERT_TRUE(results[1]->code == StatusCode::kOk);  // delete wins once
    if (results[0]->code == StatusCode::kOk) {
      CO_ASSERT_TRUE(results[0]->resolved_depth == 4u);
    } else {
      CO_ASSERT_TRUE(results[0]->code == StatusCode::kNotFound);
      CO_ASSERT_TRUE(results[0]->resolved_depth == 3u);
      CO_ASSERT_TRUE(results[0]->prefix.size() == 3u);
    }
  }(e));
  e.Drain();
  EXPECT_TRUE(e.Converged());
}

TEST(CompoundEnsembleTest, ResolveWatchFiresOnPrefixComponent) {
  Ensemble e(3, /*n_clients=*/2);
  e.Connect();
  std::vector<WatchEvent> events;
  e.client(0).SetWatchHandler(
      [&events](const WatchEvent& ev) { events.push_back(ev); });
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    co_await BuildChain(en.client(0));
    // Client 0 resolves with per-component watches, then client 1 mutates
    // an *interior* component's data — the watch must fire even though the
    // resolve targeted the terminal.
    auto res = co_await en.client(0).Resolve("/a/b/c/f", /*watch=*/true, kTag);
    CO_ASSERT_OK(res.status());
    CO_ASSERT_TRUE(res->code == StatusCode::kOk);
    auto set = co_await en.client(1).Set("/a/b", DirData());
    CO_ASSERT_OK(set.status());
  }(e));
  e.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].path, "/a/b");
  EXPECT_EQ(events[0].type, WatchEventType::kNodeDataChanged);
}

TEST(CompoundEnsembleTest, PartialMissWatchFiresOnCreation) {
  Ensemble e(3, /*n_clients=*/2);
  e.Connect();
  std::vector<WatchEvent> events;
  e.client(0).SetWatchHandler(
      [&events](const WatchEvent& ev) { events.push_back(ev); });
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    co_await BuildChain(en.client(0));
    // Partial miss registers a creation watch on the first missing
    // component — the server-side mirror of the client's negative entry.
    auto res = co_await en.client(0).Resolve("/a/b/missing", /*watch=*/true,
                                             kTag);
    CO_ASSERT_OK(res.status());
    CO_ASSERT_TRUE(res->code == StatusCode::kNotFound);
    CO_ASSERT_TRUE(res->resolved_depth == 2u);
    auto created = co_await en.client(1).Create("/a/b/missing", FileData());
    CO_ASSERT_OK(created.status());
  }(e));
  e.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].path, "/a/b/missing");
  EXPECT_EQ(events[0].type, WatchEventType::kNodeCreated);
}

TEST(CompoundEnsembleTest, ReadDirPlusRegistersChildWatches) {
  Ensemble e(3, /*n_clients=*/2);
  e.Connect();
  std::vector<WatchEvent> events;
  e.client(0).SetWatchHandler(
      [&events](const WatchEvent& ev) { events.push_back(ev); });
  sim::RunTask(e.sim, [](Ensemble& en) -> sim::Task<void> {
    co_await BuildChain(en.client(0));
    auto res = co_await en.client(0).ReadDirPlus("/a/b/c", /*watch=*/true,
                                                 kTag);
    CO_ASSERT_OK(res.status());
    CO_ASSERT_TRUE(res->code == StatusCode::kOk);
    CO_ASSERT_TRUE(res->entries.size() == 1u);
    // Mutating a listed entry fires its per-entry data watch.
    auto set = co_await en.client(1).Set("/a/b/c/f", FileData("Fv2"));
    CO_ASSERT_OK(set.status());
  }(e));
  e.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].path, "/a/b/c/f");
}

}  // namespace
}  // namespace dufs::zk
