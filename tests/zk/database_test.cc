#include "zk/database.h"

#include <gtest/gtest.h>

namespace dufs::zk {
namespace {

std::vector<std::uint8_t> Bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

class DatabaseTest : public ::testing::Test {
 protected:
  Database db_;
  Zxid zxid_ = 0;

  AppliedTxn Apply(Op op, SessionId session = 1) {
    Txn txn;
    txn.session = session;
    txn.op = std::move(op);
    ++zxid_;
    return db_.Apply(txn, zxid_, zxid_ * 100);
  }

  AppliedTxn ApplyMulti(std::vector<Op> ops, SessionId session = 1) {
    Txn txn;
    txn.session = session;
    txn.op.type = OpType::kMulti;
    txn.multi_ops = std::move(ops);
    ++zxid_;
    return db_.Apply(txn, zxid_, zxid_ * 100);
  }
};

TEST_F(DatabaseTest, CreateThenRead) {
  auto applied = Apply(Op::Create("/x", Bytes("v")));
  EXPECT_TRUE(applied.result.ok());
  EXPECT_EQ(applied.result.created_path, "/x");

  Op get;
  get.type = OpType::kGetData;
  get.path = "/x";
  auto r = db_.Read(get);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.data, Bytes("v"));
}

TEST_F(DatabaseTest, ReadMissingIsNotFound) {
  Op get;
  get.type = OpType::kGetData;
  get.path = "/nope";
  EXPECT_EQ(db_.Read(get).code, StatusCode::kNotFound);
}

TEST_F(DatabaseTest, ApplyAdvancesLastApplied) {
  EXPECT_EQ(db_.last_applied(), 0);
  Apply(Op::Create("/x", {}));
  EXPECT_EQ(db_.last_applied(), 1);
}

TEST_F(DatabaseTest, TriggersOnCreateDeleteSet) {
  auto c = Apply(Op::Create("/x", {}));
  ASSERT_EQ(c.triggers.size(), 2u);
  EXPECT_EQ(c.triggers[0].type, WatchEventType::kNodeCreated);
  EXPECT_EQ(c.triggers[0].path, "/x");
  EXPECT_EQ(c.triggers[1].type, WatchEventType::kNodeChildrenChanged);
  EXPECT_EQ(c.triggers[1].path, "/");

  auto s = Apply(Op::SetData("/x", Bytes("d")));
  ASSERT_EQ(s.triggers.size(), 1u);
  EXPECT_EQ(s.triggers[0].type, WatchEventType::kNodeDataChanged);

  auto d = Apply(Op::Delete("/x"));
  ASSERT_EQ(d.triggers.size(), 2u);
  EXPECT_EQ(d.triggers[0].type, WatchEventType::kNodeDeleted);
}

TEST_F(DatabaseTest, SessionLifecycle) {
  Op create_session;
  create_session.type = OpType::kCreateSession;
  Apply(create_session, 99);
  EXPECT_TRUE(db_.SessionExists(99));

  Apply(Op::Create("/parent", {}), 99);
  Op eph = Op::Create("/parent/live", {}, CreateMode::kEphemeral);
  Apply(eph, 99);
  EXPECT_TRUE(db_.tree().Exists("/parent/live"));

  Op close;
  close.type = OpType::kCloseSession;
  auto applied = Apply(close, 99);
  EXPECT_FALSE(db_.SessionExists(99));
  EXPECT_FALSE(db_.tree().Exists("/parent/live"));
  EXPECT_TRUE(db_.tree().Exists("/parent"));
  // Deletion triggered watch events.
  EXPECT_FALSE(applied.triggers.empty());
}

TEST_F(DatabaseTest, MultiAllOrNothing) {
  Apply(Op::Create("/a", Bytes("1")));
  // Second op fails (duplicate) => nothing applies.
  auto applied = ApplyMulti({
      Op::Create("/b", {}),
      Op::Create("/a", {}),  // exists
  });
  EXPECT_EQ(applied.result.code, StatusCode::kAlreadyExists);
  EXPECT_FALSE(db_.tree().Exists("/b"));
}

TEST_F(DatabaseTest, MultiAtomicRename) {
  Apply(Op::Create("/src", Bytes("payload")));
  auto applied = ApplyMulti({
      Op::CheckVersion("/src", 0),
      Op::Create("/dst", Bytes("payload")),
      Op::Delete("/src"),
  });
  EXPECT_TRUE(applied.result.ok());
  EXPECT_FALSE(db_.tree().Exists("/src"));
  EXPECT_TRUE(db_.tree().Exists("/dst"));
  EXPECT_EQ(applied.multi_results.size(), 3u);
}

TEST_F(DatabaseTest, MultiSeesItsOwnEffects) {
  // Create parent and child in the same multi.
  auto applied = ApplyMulti({
      Op::Create("/p", {}),
      Op::Create("/p/c", {}),
  });
  EXPECT_TRUE(applied.result.ok());
  EXPECT_TRUE(db_.tree().Exists("/p/c"));
}

TEST_F(DatabaseTest, MultiDeleteRespectsOwnCreates) {
  Apply(Op::Create("/d", {}));
  // Creating a child inside the multi makes the delete of /d non-empty.
  auto applied = ApplyMulti({
      Op::Create("/d/c", {}),
      Op::Delete("/d"),
  });
  EXPECT_EQ(applied.result.code, StatusCode::kNotEmpty);
  EXPECT_FALSE(db_.tree().Exists("/d/c"));
}

TEST_F(DatabaseTest, MultiCheckVersionGuards) {
  Apply(Op::Create("/v", {}));
  Apply(Op::SetData("/v", Bytes("x")));  // version -> 1
  auto bad = ApplyMulti({
      Op::CheckVersion("/v", 0),
      Op::Create("/w", {}),
  });
  EXPECT_EQ(bad.result.code, StatusCode::kBadVersion);
  EXPECT_FALSE(db_.tree().Exists("/w"));

  auto good = ApplyMulti({
      Op::CheckVersion("/v", 1),
      Op::Create("/w", {}),
  });
  EXPECT_TRUE(good.result.ok());
  EXPECT_TRUE(db_.tree().Exists("/w"));
}

TEST_F(DatabaseTest, MultiRejectsSequential) {
  Apply(Op::Create("/q", {}));
  auto applied = ApplyMulti({
      Op::Create("/q/s-", {}, CreateMode::kPersistentSequential),
  });
  EXPECT_EQ(applied.result.code, StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, SnapshotRestore) {
  Apply(Op::Create("/a", Bytes("1")));
  Apply(Op::Create("/a/b", Bytes("2")));
  Op cs;
  cs.type = OpType::kCreateSession;
  Apply(cs, 1234);

  auto snapshot = db_.Snapshot();
  auto restored = Database::Restore(snapshot);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->Fingerprint(), db_.Fingerprint());
  EXPECT_EQ((*restored)->last_applied(), db_.last_applied());
  EXPECT_TRUE((*restored)->SessionExists(1234));
}

TEST_F(DatabaseTest, DeterministicReplicas) {
  // Two databases fed the same txn stream end identical.
  Database other;
  Zxid z = 0;
  auto both = [&](Op op) {
    Txn txn;
    txn.session = 1;
    txn.op = op;
    ++z;
    db_.Apply(txn, z, z * 100);
    other.Apply(txn, z, z * 100);
  };
  zxid_ = 1000;  // keep helper out of the way
  both(Op::Create("/r", Bytes("x")));
  both(Op::Create("/r/c1", {}));
  both(Op::SetData("/r", Bytes("y")));
  both(Op::Delete("/r/c1"));
  EXPECT_EQ(db_.Fingerprint(), other.Fingerprint());
}

TEST_F(DatabaseTest, SyncIsNoOp) {
  Op sync;
  sync.type = OpType::kSync;
  auto applied = Apply(sync);
  EXPECT_TRUE(applied.result.ok());
  EXPECT_EQ(db_.tree().node_count(), 1u);
}

}  // namespace
}  // namespace dufs::zk
