#include "zk/znode.h"

#include <gtest/gtest.h>

namespace dufs::zk {
namespace {

std::vector<std::uint8_t> Bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(PathTest, ValidatePath) {
  EXPECT_TRUE(ValidatePath("/").ok());
  EXPECT_TRUE(ValidatePath("/a").ok());
  EXPECT_TRUE(ValidatePath("/a/b/c").ok());
  EXPECT_FALSE(ValidatePath("").ok());
  EXPECT_FALSE(ValidatePath("a/b").ok());
  EXPECT_FALSE(ValidatePath("/a/").ok());
  EXPECT_FALSE(ValidatePath("/a//b").ok());
  EXPECT_FALSE(ValidatePath("/a/./b").ok());
  EXPECT_FALSE(ValidatePath("/a/../b").ok());
}

TEST(PathTest, ParentAndBase) {
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/a/b"), "/a");
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(BaseName("/a/b/c"), "c");
  EXPECT_EQ(BaseName("/a"), "a");
}

class DataTreeTest : public ::testing::Test {
 protected:
  Zxid zxid_ = 0;
  DataTree tree_;

  Result<std::string> Create(std::string_view path,
                             std::string_view data = "",
                             CreateMode mode = CreateMode::kPersistent,
                             SessionId session = 0) {
    ++zxid_;
    return tree_.Create(path, Bytes(data), mode, session, zxid_, zxid_ * 10);
  }
};

TEST_F(DataTreeTest, RootExists) {
  EXPECT_TRUE(tree_.Exists("/"));
  EXPECT_EQ(tree_.node_count(), 1u);
}

TEST_F(DataTreeTest, CreateAndFind) {
  auto created = Create("/a", "hello");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, "/a");
  auto node = tree_.Find("/a");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->data, Bytes("hello"));
  EXPECT_EQ((*node)->stat.czxid, 1);
  EXPECT_EQ((*node)->stat.version, 0);
  EXPECT_EQ(tree_.node_count(), 2u);
}

TEST_F(DataTreeTest, CreateNested) {
  ASSERT_TRUE(Create("/a").ok());
  ASSERT_TRUE(Create("/a/b").ok());
  auto created = Create("/a/b/c", "x");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, "/a/b/c");
}

TEST_F(DataTreeTest, CreateWithoutParentFails) {
  auto r = Create("/a/b");
  EXPECT_EQ(r.code(), StatusCode::kNotFound);
}

TEST_F(DataTreeTest, CreateDuplicateFails) {
  ASSERT_TRUE(Create("/a").ok());
  EXPECT_EQ(Create("/a").code(), StatusCode::kAlreadyExists);
}

TEST_F(DataTreeTest, CreateUpdatesParentStat) {
  ASSERT_TRUE(Create("/a").ok());
  ASSERT_TRUE(Create("/a/b").ok());
  auto stat = tree_.Stat("/a");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->num_children, 1);
  EXPECT_EQ(stat->cversion, 1);
  EXPECT_EQ(stat->pzxid, 2);
}

TEST_F(DataTreeTest, SequentialCreateAppendsCounter) {
  ASSERT_TRUE(Create("/q").ok());
  auto a = Create("/q/job-", "", CreateMode::kPersistentSequential);
  auto b = Create("/q/job-", "", CreateMode::kPersistentSequential);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, "/q/job-0000000000");
  EXPECT_EQ(*b, "/q/job-0000000001");
}

TEST_F(DataTreeTest, SequentialCountersPerParent) {
  ASSERT_TRUE(Create("/p1").ok());
  ASSERT_TRUE(Create("/p2").ok());
  auto a = Create("/p1/n-", "", CreateMode::kPersistentSequential);
  auto b = Create("/p2/n-", "", CreateMode::kPersistentSequential);
  EXPECT_EQ(*a, "/p1/n-0000000000");
  EXPECT_EQ(*b, "/p2/n-0000000000");
}

TEST_F(DataTreeTest, EphemeralCannotHaveChildren) {
  ASSERT_TRUE(Create("/e", "", CreateMode::kEphemeral, 42).ok());
  EXPECT_EQ(Create("/e/child").code(), StatusCode::kInvalidArgument);
}

TEST_F(DataTreeTest, EphemeralsOfSession) {
  ASSERT_TRUE(Create("/dir").ok());
  ASSERT_TRUE(Create("/dir/e1", "", CreateMode::kEphemeral, 7).ok());
  ASSERT_TRUE(Create("/dir/e2", "", CreateMode::kEphemeral, 7).ok());
  ASSERT_TRUE(Create("/dir/e3", "", CreateMode::kEphemeral, 8).ok());
  auto paths = tree_.EphemeralsOf(7);
  EXPECT_EQ(paths.size(), 2u);
}

TEST_F(DataTreeTest, DeleteLeaf) {
  ASSERT_TRUE(Create("/a").ok());
  EXPECT_TRUE(tree_.Delete("/a", kAnyVersion, ++zxid_).ok());
  EXPECT_FALSE(tree_.Exists("/a"));
  EXPECT_EQ(tree_.node_count(), 1u);
}

TEST_F(DataTreeTest, DeleteNonEmptyFails) {
  ASSERT_TRUE(Create("/a").ok());
  ASSERT_TRUE(Create("/a/b").ok());
  EXPECT_EQ(tree_.Delete("/a", kAnyVersion, ++zxid_).code(),
            StatusCode::kNotEmpty);
}

TEST_F(DataTreeTest, DeleteMissingFails) {
  EXPECT_EQ(tree_.Delete("/nope", kAnyVersion, ++zxid_).code(),
            StatusCode::kNotFound);
}

TEST_F(DataTreeTest, DeleteRootFails) {
  EXPECT_EQ(tree_.Delete("/", kAnyVersion, ++zxid_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DataTreeTest, DeleteWithVersionCheck) {
  ASSERT_TRUE(Create("/a").ok());
  ASSERT_TRUE(tree_.SetData("/a", Bytes("x"), kAnyVersion, ++zxid_, 0).ok());
  EXPECT_EQ(tree_.Delete("/a", 0, ++zxid_).code(), StatusCode::kBadVersion);
  EXPECT_TRUE(tree_.Delete("/a", 1, ++zxid_).ok());
}

TEST_F(DataTreeTest, SetDataBumpsVersion) {
  ASSERT_TRUE(Create("/a", "v0").ok());
  auto stat = tree_.SetData("/a", Bytes("v1"), 0, ++zxid_, 99);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->version, 1);
  EXPECT_EQ(stat->mtime, 99);
  EXPECT_EQ(stat->data_length, 2);
  EXPECT_EQ(tree_.SetData("/a", Bytes("v2"), 0, ++zxid_, 0).code(),
            StatusCode::kBadVersion);
}

TEST_F(DataTreeTest, GetChildrenSorted) {
  ASSERT_TRUE(Create("/d").ok());
  ASSERT_TRUE(Create("/d/zz").ok());
  ASSERT_TRUE(Create("/d/aa").ok());
  ASSERT_TRUE(Create("/d/mm").ok());
  auto children = tree_.GetChildren("/d");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"aa", "mm", "zz"}));
}

TEST_F(DataTreeTest, SerializeRoundTrip) {
  ASSERT_TRUE(Create("/a", "data-a").ok());
  ASSERT_TRUE(Create("/a/b", "data-b").ok());
  ASSERT_TRUE(Create("/c", "", CreateMode::kEphemeral, 5).ok());
  ASSERT_TRUE(Create("/a/seq-", "", CreateMode::kPersistentSequential).ok());

  wire::BufferWriter w;
  tree_.Serialize(w);
  auto data = w.Take();
  wire::BufferReader r(data);
  auto restored = DataTree::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->node_count(), tree_.node_count());
  EXPECT_EQ((*restored)->Fingerprint(), tree_.Fingerprint());
  EXPECT_EQ((*restored)->EphemeralsOf(5).size(), 1u);
  // Sequence counters must survive: the next sequential name continues.
  auto next = (*restored)->Create("/a/seq-", {},
                                  CreateMode::kPersistentSequential, 0, 100,
                                  0);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, "/a/seq-0000000001");
}

TEST_F(DataTreeTest, FingerprintChangesWithContent) {
  const auto fp0 = tree_.Fingerprint();
  ASSERT_TRUE(Create("/a").ok());
  const auto fp1 = tree_.Fingerprint();
  EXPECT_NE(fp0, fp1);
  ASSERT_TRUE(tree_.SetData("/a", Bytes("x"), kAnyVersion, ++zxid_, 0).ok());
  EXPECT_NE(fp1, tree_.Fingerprint());
}

TEST_F(DataTreeTest, MemoryEstimateGrowsLinearly) {
  ASSERT_TRUE(Create("/base").ok());
  const auto before = tree_.EstimateMemoryBytes();
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(Create("/base/node" + std::to_string(i), "0123456789").ok());
  }
  const auto after = tree_.EstimateMemoryBytes();
  const double per_node =
      static_cast<double>(after - before) / static_cast<double>(kN);
  // Fig. 11 calibration target: ~417 bytes per znode (±25%).
  EXPECT_GT(per_node, 300);
  EXPECT_LT(per_node, 550);
}

TEST_F(DataTreeTest, StatOnMissingReturnsNotFound) {
  EXPECT_EQ(tree_.Stat("/ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_.GetChildren("/ghost").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dufs::zk
