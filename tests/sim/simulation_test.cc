#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/future.h"
#include "sim/task.h"

namespace dufs::sim {
namespace {

TEST(SimulationTest, TimeStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, ScheduledFnRunsAtRequestedTime) {
  Simulation sim;
  SimTime observed = -1;
  sim.ScheduleFn(5 * kMillisecond, [&] { observed = sim.now(); });
  sim.Run();
  EXPECT_EQ(observed, 5 * kMillisecond);
  EXPECT_EQ(sim.now(), 5 * kMillisecond);
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleFn(30, [&] { order.push_back(3); });
  sim.ScheduleFn(10, [&] { order.push_back(1); });
  sim.ScheduleFn(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, SameTimestampIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleFn(7, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleFn(10, [&] { ++fired; });
  sim.ScheduleFn(100, [&] { ++fired; });
  sim.Run(/*until=*/50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);  // idles forward to the horizon
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulationTest, RequestStopHaltsLoop) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleFn(1, [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.ScheduleFn(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.ClearStop();
  sim.Run();
  EXPECT_EQ(fired, 2);
}

// `out` lives in the test body, which drives the frame to completion.
Task<void> WaitAndMark(Simulation& sim, Duration d, std::vector<SimTime>& out) {  // dufs-lint: allow(coro-ref-param)
  co_await sim.Delay(d);
  out.push_back(sim.now());
}

TEST(TaskTest, DelayAdvancesTime) {
  Simulation sim;
  std::vector<SimTime> marks;
  RunTask(sim, WaitAndMark(sim, 42, marks));
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0], 42);
}

Task<int> Add(Simulation& sim, int a, int b) {
  co_await sim.Delay(1);
  co_return a + b;
}

Task<int> Compose(Simulation& sim) {
  const int x = co_await Add(sim, 1, 2);
  const int y = co_await Add(sim, x, 10);
  co_return y;
}

TEST(TaskTest, NestedAwaitReturnsValues) {
  Simulation sim;
  EXPECT_EQ(RunTask(sim, Compose(sim)), 13);
  EXPECT_EQ(sim.now(), 2);  // two sequential 1ns delays
}

Task<void> Thrower(Simulation& sim) {
  co_await sim.Delay(1);
  throw std::runtime_error("boom");
}

Task<std::string> CatchChild(Simulation& sim) {
  try {
    co_await Thrower(sim);
  } catch (const std::runtime_error& e) {
    co_return std::string(e.what());
  }
  co_return std::string("no exception");
}

TEST(TaskTest, ExceptionPropagatesAcrossAwait) {
  Simulation sim;
  EXPECT_EQ(RunTask(sim, CatchChild(sim)), "boom");
}

TEST(TaskTest, SpawnedTasksRunConcurrently) {
  Simulation sim;
  std::vector<SimTime> marks;
  {
    CurrentSimulationScope scope(&sim);
    sim.Spawn(WaitAndMark(sim, 30, marks));
    sim.Spawn(WaitAndMark(sim, 10, marks));
    sim.Spawn(WaitAndMark(sim, 20, marks));
  }
  sim.Run();
  EXPECT_EQ(marks, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(sim.live_detached_tasks(), 0u);  // all frames self-destroyed
}

TEST(TaskTest, ShutdownReclaimsSuspendedFrames) {
  Simulation sim;
  std::vector<SimTime> marks;
  {
    CurrentSimulationScope scope(&sim);
    sim.Spawn(WaitAndMark(sim, 1000, marks));
  }
  sim.Run(/*until=*/10);
  EXPECT_EQ(sim.live_detached_tasks(), 1u);
  sim.Shutdown();
  EXPECT_EQ(sim.live_detached_tasks(), 0u);
  EXPECT_TRUE(marks.empty());
}

TEST(FutureTest, AwaitAlreadyFulfilled) {
  Simulation sim;
  auto [future, promise] = MakeFuture<int>(sim);
  EXPECT_TRUE(promise.Set(7));
  EXPECT_FALSE(promise.Set(8));  // first write wins
  auto task = [](Future<int> f) -> Task<int> { co_return co_await std::move(f); };
  CurrentSimulationScope scope(&sim);
  EXPECT_EQ(RunTask(sim, task(std::move(future))), 7);
}

Task<void> FulfillLater(Simulation& sim, Promise<int> p, Duration d, int v) {
  co_await sim.Delay(d);
  p.Set(v);
}

TEST(FutureTest, WaiterResumesOnSet) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  auto [future, promise] = MakeFuture<int>(sim);
  sim.Spawn(FulfillLater(sim, promise, 50, 99));
  auto consumer = [](Simulation& s, Future<int> f) -> Task<SimTime> {
    const int v = co_await std::move(f);
    EXPECT_EQ(v, 99);
    co_return s.now();
  };
  EXPECT_EQ(RunTask(sim, consumer(sim, std::move(future))), 50);
}

TEST(FutureTest, RaceFirstWriterWins) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  auto [future, promise] = MakeFuture<int>(sim);
  sim.Spawn(FulfillLater(sim, promise, 10, 1));
  sim.Spawn(FulfillLater(sim, promise, 20, 2));  // loses the race
  auto consumer = [](Future<int> f) -> Task<int> {
    co_return co_await std::move(f);
  };
  EXPECT_EQ(RunTask(sim, consumer(std::move(future))), 1);
}

TEST(SimulationTest, DeterministicReplay) {
  auto run_once = [] {
    Simulation sim(1234);
    CurrentSimulationScope scope(&sim);
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 5; ++i) {
      sim.Spawn([](Simulation& s, std::vector<std::uint64_t>& t) -> Task<void> {
        co_await s.Delay(static_cast<Duration>(s.rng().NextBelow(100)));
        t.push_back(static_cast<std::uint64_t>(s.now()));
      }(sim, trace));
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dufs::sim
