// Scheduler-structure tests for the hierarchical timing wheel behind
// Simulation: FIFO tie-break per tick, cascading across level boundaries,
// far-future overflow promotion, the early map behind a parked cursor, and
// run-twice determinism of the pop order.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/task.h"
#include "sim/time.h"

namespace dufs {
namespace {

TEST(WheelTest, SameTimestampPopsInScheduleOrderAtScale) {
  sim::Simulation sim;
  std::vector<int> order;
  // Schedule from interleaved origins so the slot list is appended to from
  // several ScheduleFn batches, not one monotone loop.
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 64; ++i) {
      const int id = batch * 64 + i;
      sim.ScheduleFn(sim::Ms(1), [&order, id] { order.push_back(id); });
    }
  }
  sim.Run();
  ASSERT_EQ(order.size(), 256u);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(order[i], i);
}

TEST(WheelTest, MixedDelaysPopInTimeThenScheduleOrder) {
  sim::Simulation sim;
  std::vector<std::pair<sim::SimTime, int>> fired;
  // Delays straddling every wheel level: sub-slot, level-0 window (4096ns),
  // each upper-level boundary, and beyond.
  const std::array<sim::Duration, 10> delays = {
      1,        3,         4'095,      4'096,        262'143,
      262'144,  16'777'216, sim::Ms(1), sim::Sec(1),  sim::Sec(60)};
  int id = 0;
  for (sim::Duration d : delays) {
    for (int rep = 0; rep < 3; ++rep) {
      const int me = id++;
      sim.ScheduleFn(d, [&fired, &sim, me] {
        fired.push_back({sim.now(), me});
      });
    }
  }
  sim.Run();
  ASSERT_EQ(fired.size(), 30u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    // Non-decreasing time; FIFO (schedule order) within equal timestamps.
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);
    }
  }
}

TEST(WheelTest, FarFutureOverflowPromotion) {
  sim::Simulation sim;
  std::vector<int> order;
  // The wheel spans 2^36 ns ≈ 68.7s past the cursor; these sit in the sorted
  // overflow level until the wheel drains, then promote in blocks.
  sim.ScheduleFn(sim::Sec(300), [&order] { order.push_back(3); });
  sim.ScheduleFn(sim::Sec(100), [&order] { order.push_back(1); });
  sim.ScheduleFn(sim::Sec(200), [&order] { order.push_back(2); });
  sim.ScheduleFn(sim::Ms(5), [&order] { order.push_back(0); });
  EXPECT_EQ(sim.pending_events(), 4u);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), sim::Sec(300));
}

TEST(WheelTest, OverflowRescheduleChainsAcrossSpans) {
  sim::Simulation sim;
  // Each firing re-arms beyond the wheel span again, forcing a fresh
  // promotion per hop; the chain must keep strict time order.
  struct Chain {
    sim::Simulation* sim;
    int hops = 0;
    sim::SimTime last_at = -1;
    void Arm() {
      sim->ScheduleFn(sim::Sec(90), [this] {
        EXPECT_GT(sim->now(), last_at);
        last_at = sim->now();
        if (++hops < 5) Arm();
      });
    }
  } chain{&sim};
  chain.Arm();
  sim.Run();
  EXPECT_EQ(chain.hops, 5);
  EXPECT_EQ(sim.now(), 5 * sim::Sec(90));
}

TEST(WheelTest, ScheduleBehindParkedCursorStillRunsInOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  // Park the cursor: the only pending event is far in the future, and
  // Run(until) stops at the horizon after peeking toward it.
  sim.ScheduleFn(sim::Sec(50), [&order] { order.push_back(9); });
  sim.Run(sim::Ms(1));
  EXPECT_EQ(sim.now(), sim::Ms(1));
  // Now schedule events earlier than anything the wheel may have advanced
  // toward; they must still fire before the far event, oldest first.
  sim.ScheduleFn(sim::Ms(2), [&order] { order.push_back(1); });
  sim.ScheduleFn(sim::Ms(1), [&order] { order.push_back(0); });
  sim.ScheduleFn(sim::Sec(1), [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(WheelTest, RunUntilHorizonLeavesEventsIntact) {
  sim::Simulation sim;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleFn(sim::Us(10) * (i + 1), [&fired] { ++fired; });
  }
  EXPECT_EQ(sim.Run(sim::Us(10) * 50), 50u);
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(sim.pending_events(), 50u);
  EXPECT_EQ(sim.Run(), 50u);
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(WheelTest, OversizeCallbackCaptureStillRuns) {
  sim::Simulation sim;
  // > 32-byte capture takes the boxed (heap trampoline) path of InlineFn.
  std::array<std::int64_t, 8> big = {1, 2, 3, 4, 5, 6, 7, 8};
  std::int64_t sum = 0;
  sim.ScheduleFn(1, [big, &sum] {
    for (std::int64_t v : big) sum += v;
  });
  sim.Run();
  EXPECT_EQ(sum, 36);
}

TEST(WheelTest, ShutdownDropsEveryWheelStructure) {
  sim::Simulation sim;
  // Wheel-resident, overflow-resident, and early-map events.
  sim.ScheduleFn(sim::Ms(1), [] { FAIL() << "dropped event ran"; });
  sim.ScheduleFn(sim::Sec(100), [] { FAIL() << "dropped event ran"; });
  sim.ScheduleFn(sim::Sec(50), [] {});
  sim.Run(sim::Us(1));  // park the cursor without firing anything
  sim.ScheduleFn(sim::Us(2), [] { FAIL() << "dropped event ran"; });
  EXPECT_GT(sim.pending_events(), 0u);
  sim.Shutdown();
  EXPECT_EQ(sim.pending_events(), 0u);
  // The simulation stays usable after Shutdown (tests reuse one sim).
  bool ran = false;
  sim.ScheduleFn(1, [&ran] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(WheelTest, TimelineGenerationCancelsStalePump) {
  sim::Simulation sim;
  obs::MetricsRegistry registry;
  auto& scope = registry.scope("node0");
  obs::Gauge g = scope.gauge("depth");
  obs::TimelineSampler sampler({sim::Ms(1), 64});
  sampler.WatchGauge("node0/depth", g);

  sampler.Start(sim);
  sim.ScheduleFn(sim::Ms(10), [&sim] { sim.RequestStop(); });
  sim.Run();
  sim.ClearStop();
  const std::size_t after_first = sampler.samples();
  EXPECT_GT(after_first, 1u);

  // Stop bumps the generation: the pump coroutine still scheduled in the
  // wheel wakes once, sees the stale generation, and exits without sampling.
  sampler.Stop();
  sim.ScheduleFn(sim::Ms(10), [&sim] { sim.RequestStop(); });
  sim.Run();
  sim.ClearStop();
  EXPECT_EQ(sampler.samples(), after_first);

  // Restarting samples again under a fresh generation (plus one immediate
  // sample at Start).
  sampler.Start(sim);
  sim.ScheduleFn(sim::Ms(5), [&sim] { sim.RequestStop(); });
  sim.Run();
  sim.ClearStop();
  EXPECT_GT(sampler.samples(), after_first + 1);
}

// A randomized storm, run twice from the same seed: the pop order (and so
// every now() observed by callbacks) must match event for event.
std::vector<std::pair<sim::SimTime, std::uint64_t>> Storm(std::uint64_t seed) {
  sim::Simulation sim(seed);
  std::vector<std::pair<sim::SimTime, std::uint64_t>> log;
  struct Churn {
    sim::Simulation* sim;
    std::vector<std::pair<sim::SimTime, std::uint64_t>>* log;
    std::uint64_t scheduled = 0;
    void Arm(std::uint64_t id) {
      sim::Duration d;
      if (sim->rng().NextBelow(64) == 0) {
        d = sim::Sec(1) + static_cast<sim::Duration>(
                              sim->rng().NextBelow(sim::Sec(89)));
      } else {
        d = 1 + static_cast<sim::Duration>(sim->rng().NextBelow(sim::Ms(1)));
      }
      sim->ScheduleFn(d, [this, id] {
        log->push_back({sim->now(), id});
        if (scheduled < 3000) Arm(scheduled++);
      });
    }
  } churn{&sim, &log};
  for (std::uint64_t i = 0; i < 32; ++i) churn.Arm(churn.scheduled++);
  sim.Run();
  return log;
}

TEST(WheelTest, RandomStormIsDeterministicAcrossRuns) {
  const auto a = Storm(42);
  const auto b = Storm(42);
  ASSERT_GE(a.size(), 3000u);
  EXPECT_EQ(a, b);
  const auto c = Storm(43);
  EXPECT_NE(a, c);  // the seed actually matters
}

}  // namespace
}  // namespace dufs
