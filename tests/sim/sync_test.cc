#include "sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.h"

namespace dufs::sim {
namespace {

// `res`/`spans` live in the test body, which runs the sim to completion.
Task<void> UseResource(Simulation& sim, Resource& res, Duration hold,  // dufs-lint: allow(coro-ref-param)
                       std::vector<std::pair<SimTime, SimTime>>& spans) {
  auto guard = co_await res.Acquire();
  const SimTime start = sim.now();
  co_await sim.Delay(hold);
  spans.emplace_back(start, sim.now());
}

TEST(ResourceTest, SerializesWhenCapacityOne) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Resource res(sim, 1);
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (int i = 0; i < 4; ++i) sim.Spawn(UseResource(sim, res, 10, spans));
  sim.Run();
  ASSERT_EQ(spans.size(), 4u);
  // Non-overlapping, back-to-back: 0-10, 10-20, 20-30, 30-40.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].first, 10 * i);
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].second, 10 * (i + 1));
  }
}

TEST(ResourceTest, CapacityTwoAllowsPairs) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Resource res(sim, 2);
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (int i = 0; i < 4; ++i) sim.Spawn(UseResource(sim, res, 10, spans));
  sim.Run();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].first, 0);
  EXPECT_EQ(spans[1].first, 0);
  EXPECT_EQ(spans[2].first, 10);
  EXPECT_EQ(spans[3].first, 10);
  EXPECT_EQ(sim.now(), 20);
}

TEST(ResourceTest, FifoFairness) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Resource res(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn([](Simulation& s, Resource& r, int id,
                 std::vector<int>& ord) -> Task<void> {
      auto g = co_await r.Acquire();
      ord.push_back(id);
      co_await s.Delay(1);
    }(sim, res, i, order));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, PermitNotLeakedUnderChurn) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Resource res(sim, 2);
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (int i = 0; i < 50; ++i) {
    sim.Spawn(UseResource(sim, res, 1 + (i % 3), spans));
  }
  sim.Run();
  EXPECT_EQ(spans.size(), 50u);
  EXPECT_EQ(res.in_use(), 0u);
  EXPECT_EQ(res.queue_length(), 0u);
  // At no sim time may more than 2 spans overlap.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    int overlap = 0;
    for (std::size_t j = 0; j < spans.size(); ++j) {
      if (spans[j].first <= spans[i].first && spans[i].first < spans[j].second) {
        ++overlap;
      }
    }
    EXPECT_LE(overlap, 2);
  }
}

TEST(ResourceTest, GuardReleaseNowFreesEarly) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Resource res(sim, 1);
  std::vector<SimTime> starts;
  sim.Spawn([](Simulation& s, Resource& r) -> Task<void> {
    auto g = co_await r.Acquire();
    co_await s.Delay(10);
    g.ReleaseNow();
    co_await s.Delay(100);  // keeps running, but permit already released
  }(sim, res));
  sim.Spawn([](Simulation& s, Resource& r, std::vector<SimTime>& st) -> Task<void> {
    auto g = co_await r.Acquire();
    st.push_back(s.now());
  }(sim, res, starts));
  sim.Run();
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 10);
}

TEST(MailboxTest, DeliversInOrder) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Mailbox<int> mb(sim);
  std::vector<int> got;
  sim.Spawn([](Mailbox<int>& m, std::vector<int>& g) -> Task<void> {
    while (auto item = co_await m.Recv()) g.push_back(*item);
  }(mb, got));
  sim.ScheduleFn(1, [&] { mb.Send(1); });
  sim.ScheduleFn(2, [&] {
    mb.Send(2);
    mb.Send(3);
  });
  sim.ScheduleFn(3, [&] { mb.Close(); });
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(MailboxTest, RecvBlocksUntilSend) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Mailbox<int> mb(sim);
  SimTime recv_time = -1;
  sim.Spawn([](Simulation& s, Mailbox<int>& m, SimTime& t) -> Task<void> {
    auto item = co_await m.Recv();
    EXPECT_TRUE(item.has_value());
    t = s.now();
  }(sim, mb, recv_time));
  sim.ScheduleFn(77, [&] { mb.Send(5); });
  sim.Run();
  EXPECT_EQ(recv_time, 77);
}

TEST(MailboxTest, CloseWakesWaiter) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Mailbox<int> mb(sim);
  bool saw_close = false;
  sim.Spawn([](Mailbox<int>& m, bool& closed) -> Task<void> {
    auto item = co_await m.Recv();
    closed = !item.has_value();
  }(mb, saw_close));
  sim.ScheduleFn(5, [&] { mb.Close(); });
  sim.Run();
  EXPECT_TRUE(saw_close);
}

TEST(MailboxTest, SendAfterCloseIsDropped) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Mailbox<int> mb(sim);
  mb.Close();
  mb.Send(1);
  EXPECT_EQ(mb.size(), 0u);
}

TEST(BarrierTest, ReleasesAllPartiesTogether) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Barrier barrier(sim, 3);
  std::vector<SimTime> release_times;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](Simulation& s, Barrier& b, int id,
                 std::vector<SimTime>& out) -> Task<void> {
      co_await s.Delay(10 * (id + 1));  // arrive at 10, 20, 30
      co_await b.Arrive();
      out.push_back(s.now());
    }(sim, barrier, i, release_times));
  }
  sim.Run();
  ASSERT_EQ(release_times.size(), 3u);
  for (auto t : release_times) EXPECT_EQ(t, 30);
}

TEST(BarrierTest, Reusable) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  Barrier barrier(sim, 2);
  std::vector<SimTime> times;
  for (int i = 0; i < 2; ++i) {
    sim.Spawn([](Simulation& s, Barrier& b, int id,
                 std::vector<SimTime>& out) -> Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await s.Delay(id == 0 ? 5 : 10);
        co_await b.Arrive();
        out.push_back(s.now());
      }
    }(sim, barrier, i, times));
  }
  sim.Run();
  ASSERT_EQ(times.size(), 6u);
  // Rounds complete at 10, 20, 30 (slowest party paces each round).
  std::vector<SimTime> expect = {10, 10, 20, 20, 30, 30};
  EXPECT_EQ(times, expect);
}

}  // namespace
}  // namespace dufs::sim
