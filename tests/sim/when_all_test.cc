#include "sim/gather.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/status.h"
#include "sim/task.h"

namespace dufs::sim {
namespace {

Task<int> DelayedValue(Simulation& sim, Duration delay, int value) {
  co_await sim.Delay(delay);
  co_return value;
}

TEST(WhenAllTest, ResultsInInputOrderDespiteCompletionOrder) {
  Simulation sim;
  auto out = RunTask(sim, [](Simulation& s) -> Task<std::vector<int>> {
    std::vector<Task<int>> tasks;
    tasks.push_back(DelayedValue(s, 30, 1));  // finishes last
    tasks.push_back(DelayedValue(s, 10, 2));  // finishes first
    tasks.push_back(DelayedValue(s, 20, 3));
    co_return co_await WhenAll(std::move(tasks));
  }(sim));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(WhenAllTest, ChildrenRunConcurrently) {
  Simulation sim;
  (void)RunTask(sim, [](Simulation& s) -> Task<std::vector<int>> {
    std::vector<Task<int>> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back(DelayedValue(s, 50, i));
    co_return co_await WhenAll(std::move(tasks));
  }(sim));
  // All eight 50-tick children overlap: total elapsed = 50, not 400.
  EXPECT_EQ(sim.now(), 50);
}

TEST(WhenAllTest, LimitBoundsConcurrency) {
  Simulation sim;
  (void)RunTask(sim, [](Simulation& s) -> Task<std::vector<int>> {
    std::vector<Task<int>> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back(DelayedValue(s, 50, i));
    co_return co_await WhenAll(std::move(tasks), /*limit=*/2);
  }(sim));
  // Two in flight at a time: four waves of 50 ticks.
  EXPECT_EQ(sim.now(), 200);
}

TEST(WhenAllTest, EmptyInputCompletesImmediately) {
  Simulation sim;
  auto out = RunTask(sim, [](Simulation&) -> Task<std::vector<int>> {
    co_return co_await WhenAll(std::vector<Task<int>>{});
  }(sim));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(sim.now(), 0);
}

TEST(WhenAllTest, VoidOverloadJoinsAll) {
  Simulation sim;
  int done = 0;
  RunTask(sim, [](Simulation& s, int& d) -> Task<void> {
    std::vector<Task<void>> tasks;
    for (int i = 0; i < 4; ++i) {
      tasks.push_back([](Simulation& s2, int& d2, int delay) -> Task<void> {
        co_await s2.Delay(delay);
        ++d2;
      }(s, d, 10 * (i + 1)));
    }
    co_await WhenAll(std::move(tasks));
  }(sim, done));
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.now(), 40);
}

TEST(WhenAllTest, StatusValuesPropagateAsResults) {
  Simulation sim;
  auto out = RunTask(sim, [](Simulation& s) -> Task<std::vector<Status>> {
    std::vector<Task<Status>> tasks;
    tasks.push_back([](Simulation& s2) -> Task<Status> {
      co_await s2.Delay(5);
      co_return Status(StatusCode::kNotFound, "a");
    }(s));
    tasks.push_back([](Simulation& s2) -> Task<Status> {
      co_await s2.Delay(1);
      co_return Status::Ok();
    }(s));
    co_return co_await WhenAll(std::move(tasks));
  }(sim));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].code(), StatusCode::kNotFound);
  EXPECT_TRUE(out[1].ok());
}

TEST(WhenAllTest, ExceptionPropagatesAfterAllChildrenSettle) {
  Simulation sim;
  int survivors = 0;
  bool caught = false;
  RunTask(sim, [](Simulation& s, int& ok, bool& threw) -> Task<void> {
    std::vector<Task<int>> tasks;
    tasks.push_back([](Simulation& s2) -> Task<int> {
      co_await s2.Delay(5);
      throw std::runtime_error("boom");
    }(s));
    tasks.push_back([](Simulation& s2, int& ok2) -> Task<int> {
      co_await s2.Delay(20);
      ++ok2;
      co_return 7;
    }(s, ok));
    try {
      (void)co_await WhenAll(std::move(tasks));
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
      threw = true;
    }
  }(sim, survivors, caught));
  EXPECT_TRUE(caught);
  // The sibling ran to completion before the exception was rethrown.
  EXPECT_EQ(survivors, 1);
  EXPECT_EQ(sim.now(), 20);
}

TEST(WhenAllTest, TeardownReclaimsSuspendedChildren) {
  // A gather whose children never finish must be fully reclaimed by
  // Simulation shutdown: no leaks (ASAN) and no touched-after-free state.
  auto sim = std::make_unique<Simulation>();
  {
    CurrentSimulationScope scope(sim.get());
    sim->Spawn([](Simulation& s) -> Task<void> {
      std::vector<Task<int>> tasks;
      for (int i = 0; i < 4; ++i) {
        tasks.push_back(DelayedValue(s, kSimTimeMax / 2, i));
      }
      (void)co_await WhenAll(std::move(tasks));
      ADD_FAILURE() << "gather should never complete";
    }(*sim));
  }
  sim->Run(/*until=*/100);
  EXPECT_GT(sim->live_detached_tasks(), 0u);
  sim.reset();  // ~Simulation -> Shutdown destroys all suspended frames
}

TEST(WhenAllTest, NestedGathersCompose) {
  Simulation sim;
  auto out = RunTask(sim, [](Simulation& s) -> Task<std::vector<int>> {
    auto inner = [](Simulation& s2, int base) -> Task<int> {
      std::vector<Task<int>> tasks;
      for (int i = 0; i < 3; ++i) {
        tasks.push_back(DelayedValue(s2, 10, base + i));
      }
      auto vals = co_await WhenAll(std::move(tasks));
      int sum = 0;
      for (int v : vals) sum += v;
      co_return sum;
    };
    std::vector<Task<int>> outer;
    outer.push_back(inner(s, 0));    // 0+1+2
    outer.push_back(inner(s, 100));  // 100+101+102
    co_return co_await WhenAll(std::move(outer));
  }(sim));
  EXPECT_EQ(out, (std::vector<int>{3, 303}));
  EXPECT_EQ(sim.now(), 10);
}

}  // namespace
}  // namespace dufs::sim
