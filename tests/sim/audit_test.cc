// Exercises the DUFS_AUDIT runtime invariant checker by committing the
// crimes it exists to catch: leaking a frame, double-scheduling a suspended
// frame, scheduling a completed frame, and destroying a frame that still has
// a queued event. Violations are detected at schedule/destroy time, so none
// of these actually execute undefined behavior.
//
// Compiled without -DDUFS_AUDIT=ON every test skips (the hooks are no-ops).
#include "sim/audit.h"

#include <gtest/gtest.h>

#include <utility>

#include "sim/task.h"

namespace dufs::sim {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!audit::Enabled()) GTEST_SKIP() << "built without DUFS_AUDIT";
    audit::Reset();
  }
};

Task<void> Delayer(Simulation& sim, Duration d) { co_await sim.Delay(d); }

Task<int> Answer(Simulation& sim) {
  co_await sim.Delay(1);
  co_return 42;
}

TEST_F(AuditTest, CleanRunReportsClean) {
  Simulation sim;
  EXPECT_EQ(RunTask(sim, Answer(sim)), 42);
  sim.Shutdown();
  const auto report = audit::Snapshot();
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.frames_allocated, 0u);
  EXPECT_EQ(report.frames_allocated, report.frames_freed);
  EXPECT_EQ(report.live_frames, 0u);
  EXPECT_TRUE(report.violations.empty());
}

TEST_F(AuditTest, LeakedFrameIsReported) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  auto task = Delayer(sim, 10);
  // Steal the frame and drop the handle: nobody will ever destroy it.
  auto h = task.Release();
  ASSERT_TRUE(h != nullptr);
  auto report = audit::Snapshot();
  EXPECT_EQ(report.live_frames, 1u);
  EXPECT_FALSE(report.clean());
  // Clean up so the leak does not outlive the assertion.
  h.destroy();
  report = audit::Snapshot();
  EXPECT_EQ(report.live_frames, 0u);
  EXPECT_TRUE(report.clean());
}

TEST_F(AuditTest, DoubleScheduleIsDetected) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  auto task = Delayer(sim, 10);
  auto h = task.Release();
  // One suspension, two resumes queued: the second schedule is the bug.
  sim.ScheduleHandle(0, h);
  sim.ScheduleHandle(0, h);
  const auto report = audit::Snapshot();
  EXPECT_EQ(report.double_schedules, 1u);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("double-schedule"), std::string::npos);
  // Drop both events unexecuted, then reclaim the frame.
  sim.Shutdown();
  h.destroy();
  EXPECT_EQ(audit::Snapshot().live_frames, 0u);
}

TEST_F(AuditTest, ScheduleAfterCompletionIsDetected) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  auto task = Delayer(sim, 5);
  auto h = task.Release();
  sim.ScheduleHandle(0, h);
  sim.Run();  // starts the frame, runs the delay, completes it
  EXPECT_EQ(audit::Snapshot().schedules_after_completion, 0u);
  // The frame parked at final_suspend; resuming it again is the bug.
  sim.ScheduleHandle(0, h);
  const auto report = audit::Snapshot();
  EXPECT_EQ(report.schedules_after_completion, 1u);
  ASSERT_GE(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("already-completed"), std::string::npos);
  sim.Shutdown();
  h.destroy();
}

TEST_F(AuditTest, DestroyedWhileScheduledIsDetected) {
  Simulation sim;
  CurrentSimulationScope scope(&sim);
  {
    auto task = Delayer(sim, 100);
    auto h = task.Release();
    sim.ScheduleHandle(0, h);
    sim.Run(50);  // frame starts, suspends on Delay(100); event still queued
    h.destroy();  // the queued event now points at a dead frame
  }
  const auto report = audit::Snapshot();
  EXPECT_EQ(report.destroyed_while_scheduled, 1u);
  ASSERT_GE(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("destroyed"), std::string::npos);
  sim.Shutdown();  // drops the stale event without resuming it
}

TEST_F(AuditTest, ShutdownDropsAreCountedNotViolations) {
  Simulation sim;
  {
    CurrentSimulationScope scope(&sim);
    // Detached task parked on a long delay: Shutdown must reclaim it and
    // count the dropped event, without flagging destroyed-while-scheduled.
    sim.Spawn(Delayer(sim, Sec(60)));
  }
  sim.Run(10);
  sim.Shutdown();
  const auto report = audit::Snapshot();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.events_dropped_at_shutdown, 1u);
  EXPECT_EQ(report.live_frames, 0u);
}

TEST_F(AuditTest, FrameOrdinalsAreDeterministic) {
  // Two identical runs must produce byte-identical violation text (reports
  // name frames by allocation ordinal, never by pointer).
  auto run_once = [] {
    audit::Reset();
    Simulation sim;
    CurrentSimulationScope scope(&sim);
    auto task = Delayer(sim, 10);
    auto h = task.Release();
    sim.ScheduleHandle(0, h);
    sim.ScheduleHandle(0, h);
    auto violations = audit::Snapshot().violations;
    sim.Shutdown();
    h.destroy();
    return violations;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}

TEST_F(AuditTest, ResetClearsCounters) {
  Simulation sim;
  EXPECT_EQ(RunTask(sim, Answer(sim)), 42);
  EXPECT_GT(audit::Snapshot().frames_allocated, 0u);
  audit::Reset();
  const auto report = audit::Snapshot();
  EXPECT_EQ(report.frames_allocated, 0u);
  EXPECT_EQ(report.frames_freed, 0u);
  EXPECT_EQ(report.live_frames, 0u);
}

}  // namespace
}  // namespace dufs::sim
