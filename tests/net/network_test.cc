#include "net/network.h"

#include <gtest/gtest.h>

#include "net/rpc.h"
#include "sim/task.h"
#include "wire/buffer.h"

namespace dufs::net {
namespace {

struct TwoNodeFixture {
  sim::Simulation sim;
  Network net{sim};
  NodeId a, b;
  TwoNodeFixture() {
    a = net.AddNode("a");
    b = net.AddNode("b");
  }
};

TEST(NetworkTest, MessageArrivesWithLatency) {
  TwoNodeFixture f;
  sim::SimTime arrival = -1;
  f.net.node(f.b).SetSink([&](Message) { arrival = f.sim.now(); });
  Message m;
  m.src = f.a;
  m.dst = f.b;
  m.payload.assign(100, 0);
  f.net.Send(std::move(m));
  f.sim.Run();
  // tx(src) + latency + rx(dst) — must be strictly positive and bounded by
  // a couple hundred microseconds for a small message on 1 GigE.
  EXPECT_GT(arrival, 0);
  EXPECT_LT(arrival, sim::Us(300));
}

TEST(NetworkTest, BigMessageCostsBandwidth) {
  TwoNodeFixture f;
  sim::SimTime small_arrival = 0, big_arrival = 0;
  int deliveries = 0;
  f.net.node(f.b).SetSink([&](Message m) {
    ++deliveries;
    if (m.payload.size() > 1000) {
      big_arrival = f.sim.now();
    } else {
      small_arrival = f.sim.now();
    }
  });
  {
    Message m;
    m.src = f.a;
    m.dst = f.b;
    m.payload.assign(100, 0);
    f.net.Send(std::move(m));
  }
  f.sim.Run();
  {
    Message m;
    m.src = f.a;
    m.dst = f.b;
    m.payload.assign(1'000'000, 0);
    f.net.Send(std::move(m));
  }
  f.sim.Run();
  EXPECT_EQ(deliveries, 2);
  // 1 MB at ~112 MB/s ≈ 8.9 ms per NIC traversal; far above the small one.
  EXPECT_GT(big_arrival - small_arrival, sim::Ms(5));
}

TEST(NetworkTest, EgressSerializesMessages) {
  TwoNodeFixture f;
  std::vector<sim::SimTime> arrivals;
  f.net.node(f.b).SetSink([&](Message) { arrivals.push_back(f.sim.now()); });
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.src = f.a;
    m.dst = f.b;
    m.payload.assign(500'000, 0);  // ~4.5ms tx each
    f.net.Send(std::move(m));
  }
  f.sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_GT(arrivals[1] - arrivals[0], sim::Ms(3));
  EXPECT_GT(arrivals[2] - arrivals[1], sim::Ms(3));
}

TEST(NetworkTest, CrashedDestinationDrops) {
  TwoNodeFixture f;
  int deliveries = 0;
  f.net.node(f.b).SetSink([&](Message) { ++deliveries; });
  f.net.node(f.b).Crash();
  Message m;
  m.src = f.a;
  m.dst = f.b;
  f.net.Send(std::move(m));
  f.sim.Run();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(f.net.messages_dropped(), 1u);
}

TEST(NetworkTest, PartitionDropsAndHealRestores) {
  TwoNodeFixture f;
  int deliveries = 0;
  f.net.node(f.b).SetSink([&](Message) { ++deliveries; });
  f.net.Partition(f.a, f.b);
  {
    Message m;
    m.src = f.a;
    m.dst = f.b;
    f.net.Send(std::move(m));
  }
  f.sim.Run();
  EXPECT_EQ(deliveries, 0);
  f.net.Heal(f.a, f.b);
  {
    Message m;
    m.src = f.a;
    m.dst = f.b;
    f.net.Send(std::move(m));
  }
  f.sim.Run();
  EXPECT_EQ(deliveries, 1);
}

TEST(NetworkTest, RestartBumpsIncarnation) {
  TwoNodeFixture f;
  const auto inc0 = f.net.node(f.a).incarnation();
  f.net.node(f.a).Crash();
  EXPECT_FALSE(f.net.node(f.a).up());
  f.net.node(f.a).Restart();
  EXPECT_TRUE(f.net.node(f.a).up());
  EXPECT_EQ(f.net.node(f.a).incarnation(), inc0 + 1);
}

TEST(NodeTest, ComputeQueuesBehindBusyCores) {
  sim::Simulation sim;
  Network net(sim);
  NodeModel model;
  model.cores = 2;
  const NodeId n = net.AddNode("srv", model);
  std::vector<sim::SimTime> done;
  {
    sim::CurrentSimulationScope scope(&sim);
    for (int i = 0; i < 4; ++i) {
      sim.Spawn([](sim::Simulation& s, Node& node,
                   std::vector<sim::SimTime>& d) -> sim::Task<void> {
        co_await node.Compute(sim::Ms(10));
        d.push_back(s.now());
      }(sim, net.node(n), done));
    }
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], sim::Ms(10));
  EXPECT_EQ(done[1], sim::Ms(10));
  EXPECT_EQ(done[2], sim::Ms(20));
  EXPECT_EQ(done[3], sim::Ms(20));
}

// ---------------------------------------------------------------- RPC ----

constexpr std::uint16_t kEcho = 1;
constexpr std::uint16_t kSlow = 2;

struct RpcFixture {
  sim::Simulation sim;
  Network net{sim};
  NodeId a, b;
  std::unique_ptr<RpcEndpoint> ep_a, ep_b;

  RpcFixture() {
    a = net.AddNode("client");
    b = net.AddNode("server");
    ep_a = std::make_unique<RpcEndpoint>(net, a);
    ep_b = std::make_unique<RpcEndpoint>(net, b);
    // The fixture owns ep_b (and so the handler closures) and outlives
    // every sim.Run() that can invoke them.
    ep_b->RegisterHandler(kEcho,
                          [this](NodeId, Payload req) -> sim::Task<RpcResult> {  // dufs-lint: allow(coro-capture-ref)
                            co_await net.node(b).Compute(sim::Us(10));
                            co_return req;  // echo
                          });
    ep_b->RegisterHandler(kSlow,
                          [this](NodeId, Payload req) -> sim::Task<RpcResult> {  // dufs-lint: allow(coro-capture-ref)
                            co_await sim.Delay(sim::Sec(10));
                            co_return req;
                          });
  }
};

TEST(RpcTest, EchoRoundTrip) {
  RpcFixture f;
  auto result = sim::RunTask(
      f.sim, [](RpcFixture& fx) -> sim::Task<RpcResult> {
        Payload req;
        req.assign({1, 2, 3});
        co_return co_await fx.ep_a->Call(fx.b, kEcho, std::move(req));
      }(f));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (Payload{1, 2, 3}));
  EXPECT_GT(f.sim.now(), 0);
}

TEST(RpcTest, TimeoutWhenHandlerTooSlow) {
  RpcFixture f;
  auto result = sim::RunTask(
      f.sim, [](RpcFixture& fx) -> sim::Task<RpcResult> {
        co_return co_await fx.ep_a->Call(fx.b, kSlow, Payload{},
                                         /*timeout=*/sim::Sec(1));
      }(f));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kTimeout);
  EXPECT_EQ(f.sim.now(), sim::Sec(1));
}

TEST(RpcTest, TimeoutWhenServerDown) {
  RpcFixture f;
  f.net.node(f.b).Crash();
  auto result = sim::RunTask(
      f.sim, [](RpcFixture& fx) -> sim::Task<RpcResult> {
        co_return co_await fx.ep_a->Call(fx.b, kEcho, Payload{},
                                         /*timeout=*/sim::Ms(100));
      }(f));
  EXPECT_EQ(result.code(), StatusCode::kTimeout);
}

TEST(RpcTest, UnknownMethodTimesOut) {
  RpcFixture f;
  auto result = sim::RunTask(
      f.sim, [](RpcFixture& fx) -> sim::Task<RpcResult> {
        co_return co_await fx.ep_a->Call(fx.b, 999, Payload{},
                                         /*timeout=*/sim::Ms(50));
      }(f));
  EXPECT_EQ(result.code(), StatusCode::kTimeout);
}

TEST(RpcTest, ConcurrentCallsAllComplete) {
  RpcFixture f;
  auto results = sim::RunTask(
      f.sim, [](RpcFixture& fx) -> sim::Task<int> {
        int ok = 0;
        // Sequential from one task; concurrency comes from multiple spawns
        // in other tests — here we validate rpc_id multiplexing correctness.
        for (int i = 0; i < 20; ++i) {
          Payload p{static_cast<std::uint8_t>(i)};
          auto r = co_await fx.ep_a->Call(fx.b, kEcho, p);
          if (r.ok() && r->at(0) == i) ++ok;
        }
        co_return ok;
      }(f));
  EXPECT_EQ(results, 20);
}

TEST(RpcTest, NotifyDeliversWithoutResponse) {
  RpcFixture f;
  int notified = 0;
  // `notified` and the handler closure both outlive the sim.Run() below.
  f.ep_b->RegisterHandler(7, [&](NodeId, Payload) -> sim::Task<RpcResult> {  // dufs-lint: allow(coro-capture-default)
    ++notified;
    co_return Payload{};
  });
  f.ep_a->Notify(f.b, 7, Payload{9});
  f.sim.Run();
  EXPECT_EQ(notified, 1);
}

TEST(RpcTest, CallFromDownNodeFailsFast) {
  RpcFixture f;
  f.net.node(f.a).Crash();
  auto result = sim::RunTask(
      f.sim, [](RpcFixture& fx) -> sim::Task<RpcResult> {
        co_return co_await fx.ep_a->Call(fx.b, kEcho, Payload{});
      }(f));
  EXPECT_EQ(result.code(), StatusCode::kNotConnected);
}

}  // namespace
}  // namespace dufs::net
