#include "vfs/memfs.h"

#include <gtest/gtest.h>

#include "sim/task.h"
#include "testutil/co_assert.h"
#include "vfs/fuse_mount.h"

namespace dufs::vfs {
namespace {

class MemFsTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  MemFs fs_{sim_};

  void Run(sim::Task<void> task) { sim::RunTask(sim_, std::move(task)); }
};

TEST_F(MemFsTest, RootStat) {
  Run([](MemFs& fs) -> sim::Task<void> {
    auto attr = co_await fs.GetAttr("/");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_TRUE(attr->IsDir());
    EXPECT_EQ(attr->inode, 1u);
  }(fs_));
}

TEST_F(MemFsTest, MkdirStatRmdir) {
  Run([](MemFs& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0700));
    auto attr = co_await fs.GetAttr("/d");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_TRUE(attr->IsDir());
    EXPECT_EQ(attr->mode, 0700u);
    CO_ASSERT_OK(co_await fs.Rmdir("/d"));
    EXPECT_EQ((co_await fs.GetAttr("/d")).code(), StatusCode::kNotFound);
  }(fs_));
}

TEST_F(MemFsTest, MkdirErrors) {
  Run([](MemFs& fs) -> sim::Task<void> {
    EXPECT_EQ((co_await fs.Mkdir("/x/y", 0755)).code(),
              StatusCode::kNotFound);
    CO_ASSERT_OK(co_await fs.Mkdir("/x", 0755));
    EXPECT_EQ((co_await fs.Mkdir("/x", 0755)).code(),
              StatusCode::kAlreadyExists);
  }(fs_));
}

TEST_F(MemFsTest, RmdirErrors) {
  Run([](MemFs& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Mkdir("/d", 0755));
    CO_ASSERT_OK(co_await fs.Mkdir("/d/sub", 0755));
    EXPECT_EQ((co_await fs.Rmdir("/d")).code(), StatusCode::kNotEmpty);
    auto created = co_await fs.Create("/f", 0644);
    CO_ASSERT_TRUE(created.ok());
    EXPECT_EQ((co_await fs.Rmdir("/f")).code(), StatusCode::kNotADirectory);
  }(fs_));
}

TEST_F(MemFsTest, CreateWriteReadRoundTrip) {
  Run([](MemFs& fs) -> sim::Task<void> {
    auto created = co_await fs.Create("/file", 0644);
    CO_ASSERT_TRUE(created.ok());
    auto handle = co_await fs.Open("/file", kRead | kWrite);
    CO_ASSERT_TRUE(handle.ok());
    auto wrote = co_await fs.Write(*handle, 0, ToBytes("hello world"));
    CO_ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(*wrote, 11u);
    auto data = co_await fs.Read(*handle, 6, 5);
    CO_ASSERT_TRUE(data.ok());
    EXPECT_EQ(FromBytes(*data), "world");
    CO_ASSERT_OK(co_await fs.Release(*handle));
    auto attr = co_await fs.GetAttr("/file");
    CO_ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 11u);
  }(fs_));
}

TEST_F(MemFsTest, SparseWriteZeroFills) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/s", 0644);
    auto handle = co_await fs.Open("/s", kWrite);
    CO_ASSERT_TRUE(handle.ok());
    (void)co_await fs.Write(*handle, 5, ToBytes("x"));
    auto data = co_await fs.Read(*handle, 0, 10);
    CO_ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->size(), 6u);
    EXPECT_EQ((*data)[0], 0);
    EXPECT_EQ((*data)[5], 'x');
  }(fs_));
}

TEST_F(MemFsTest, ReadPastEofReturnsEmpty) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/e", 0644);
    auto handle = co_await fs.Open("/e", kRead);
    CO_ASSERT_TRUE(handle.ok());
    auto data = co_await fs.Read(*handle, 100, 10);
    CO_ASSERT_TRUE(data.ok());
    EXPECT_TRUE(data->empty());
  }(fs_));
}

TEST_F(MemFsTest, OpenCreateFlagCreates) {
  Run([](MemFs& fs) -> sim::Task<void> {
    auto handle = co_await fs.Open("/new", kWrite | kCreate);
    CO_ASSERT_TRUE(handle.ok());
    EXPECT_TRUE((co_await fs.GetAttr("/new")).ok());
  }(fs_));
}

TEST_F(MemFsTest, OpenTruncateClears) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/t", 0644);
    auto h1 = co_await fs.Open("/t", kWrite);
    (void)co_await fs.Write(*h1, 0, ToBytes("data"));
    (void)co_await fs.Release(*h1);
    auto h2 = co_await fs.Open("/t", kWrite | kTruncate);
    CO_ASSERT_TRUE(h2.ok());
    auto attr = co_await fs.GetAttr("/t");
    EXPECT_EQ(attr->size, 0u);
  }(fs_));
}

TEST_F(MemFsTest, HandleSurvivesUnlink) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/gone", 0644);
    auto handle = co_await fs.Open("/gone", kRead | kWrite);
    CO_ASSERT_TRUE(handle.ok());
    CO_ASSERT_OK(co_await fs.Unlink("/gone"));
    // POSIX: open fd still usable after unlink.
    auto wrote = co_await fs.Write(*handle, 0, ToBytes("zombie"));
    EXPECT_TRUE(wrote.ok());
    auto data = co_await fs.Read(*handle, 0, 6);
    EXPECT_EQ(FromBytes(*data), "zombie");
  }(fs_));
}

TEST_F(MemFsTest, ReadDirListsEntries) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Mkdir("/dir", 0755);
    (void)co_await fs.Mkdir("/dir/sub", 0755);
    (void)co_await fs.Create("/dir/file", 0644);
    auto entries = co_await fs.ReadDir("/dir");
    CO_ASSERT_TRUE(entries.ok());
    CO_ASSERT_EQ(entries->size(), 2u);
    EXPECT_EQ((*entries)[0].name, "file");
    EXPECT_EQ((*entries)[0].type, FileType::kRegular);
    EXPECT_EQ((*entries)[1].name, "sub");
    EXPECT_EQ((*entries)[1].type, FileType::kDirectory);
  }(fs_));
}

TEST_F(MemFsTest, RenameFile) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/old", 0644);
    CO_ASSERT_OK(co_await fs.Rename("/old", "/new"));
    EXPECT_EQ((co_await fs.GetAttr("/old")).code(), StatusCode::kNotFound);
    EXPECT_TRUE((co_await fs.GetAttr("/new")).ok());
  }(fs_));
}

TEST_F(MemFsTest, RenameMovesSubtree) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Mkdir("/a", 0755);
    (void)co_await fs.Mkdir("/a/b", 0755);
    (void)co_await fs.Create("/a/b/f", 0644);
    CO_ASSERT_OK(co_await fs.Rename("/a", "/z"));
    EXPECT_TRUE((co_await fs.GetAttr("/z/b/f")).ok());
  }(fs_));
}

TEST_F(MemFsTest, RenameIntoOwnSubtreeFails) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Mkdir("/a", 0755);
    EXPECT_EQ((co_await fs.Rename("/a", "/a/b")).code(),
              StatusCode::kInvalidArgument);
  }(fs_));
}

TEST_F(MemFsTest, RenameOverwritesFile) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/src", 0644);
    (void)co_await fs.Create("/dst", 0644);
    CO_ASSERT_OK(co_await fs.Rename("/src", "/dst"));
    EXPECT_EQ((co_await fs.GetAttr("/src")).code(), StatusCode::kNotFound);
  }(fs_));
}

TEST_F(MemFsTest, RenameOntoNonEmptyDirFails) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Mkdir("/src", 0755);
    (void)co_await fs.Mkdir("/dst", 0755);
    (void)co_await fs.Mkdir("/dst/kid", 0755);
    EXPECT_EQ((co_await fs.Rename("/src", "/dst")).code(),
              StatusCode::kNotEmpty);
  }(fs_));
}

TEST_F(MemFsTest, SymlinkRoundTrip) {
  Run([](MemFs& fs) -> sim::Task<void> {
    CO_ASSERT_OK(co_await fs.Symlink("/target/path", "/link"));
    auto target = co_await fs.ReadLink("/link");
    CO_ASSERT_TRUE(target.ok());
    EXPECT_EQ(*target, "/target/path");
    auto attr = co_await fs.GetAttr("/link");
    EXPECT_EQ(attr->type, FileType::kSymlink);
  }(fs_));
}

TEST_F(MemFsTest, ChmodAndAccess) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/f", 0644);
    CO_ASSERT_OK(co_await fs.Chmod("/f", 0000));
    EXPECT_EQ((co_await fs.Access("/f", 04)).code(),
              StatusCode::kPermissionDenied);
    CO_ASSERT_OK(co_await fs.Chmod("/f", 0444));
    CO_ASSERT_OK(co_await fs.Access("/f", 04));
  }(fs_));
}

TEST_F(MemFsTest, TruncateGrowsAndShrinks) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/t", 0644);
    CO_ASSERT_OK(co_await fs.Truncate("/t", 100));
    EXPECT_EQ((co_await fs.GetAttr("/t"))->size, 100u);
    CO_ASSERT_OK(co_await fs.Truncate("/t", 10));
    EXPECT_EQ((co_await fs.GetAttr("/t"))->size, 10u);
  }(fs_));
}

TEST_F(MemFsTest, UtimensSetsTimes) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Create("/u", 0644);
    CO_ASSERT_OK(co_await fs.Utimens("/u", 111, 222));
    auto attr = co_await fs.GetAttr("/u");
    EXPECT_EQ(attr->atime, 111);
    EXPECT_EQ(attr->mtime, 222);
  }(fs_));
}

TEST_F(MemFsTest, StatFsCountsFiles) {
  Run([](MemFs& fs) -> sim::Task<void> {
    (void)co_await fs.Mkdir("/d", 0755);
    (void)co_await fs.Create("/d/f", 0644);
    auto stats = co_await fs.StatFs();
    CO_ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->files, 2u);
  }(fs_));
}

class FuseMountTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  net::Network net_{sim_};
  net::NodeId node_ = net_.AddNode("client");
  MemFs fs_{sim_};
  FuseMount mount_{net_.node(node_), fs_};

  void Run(sim::Task<void> task) { sim::RunTask(sim_, std::move(task)); }
};

TEST_F(FuseMountTest, FdLifecycle) {
  Run([](FuseMount& m) -> sim::Task<void> {
    auto fd = co_await m.Creat("/f");
    CO_ASSERT_TRUE(fd.ok());
    EXPECT_GE(*fd, 3);
    auto wrote = co_await m.Write(*fd, 0, ToBytes("abc"));
    CO_ASSERT_TRUE(wrote.ok());
    auto data = co_await m.Read(*fd, 0, 3);
    EXPECT_EQ(FromBytes(*data), "abc");
    CO_ASSERT_OK(co_await m.Close(*fd));
    EXPECT_EQ((co_await m.Read(*fd, 0, 1)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(m.open_fds(), 0u);
  }(mount_));
}

TEST_F(FuseMountTest, OverheadAdvancesClock) {
  Run([](FuseMount& m, sim::Simulation& s) -> sim::Task<void> {
    const auto before = s.now();
    (void)co_await m.Mkdir("/d");
    EXPECT_GT(s.now(), before);  // FUSE context switches cost time
  }(mount_, sim_));
}

TEST_F(FuseMountTest, PathsAreNormalized) {
  Run([](FuseMount& m) -> sim::Task<void> {
    CO_ASSERT_OK(co_await m.Mkdir("/a"));
    CO_ASSERT_OK(co_await m.Mkdir("/a/b"));
    auto attr = co_await m.Stat("/a/./b/../b//");
    EXPECT_TRUE(attr.ok());
  }(mount_));
}

TEST_F(FuseMountTest, MemoryFootprintBounded) {
  Run([](FuseMount& m) -> sim::Task<void> {
    const auto before = m.EstimateMemoryBytes();
    for (int i = 0; i < 500; ++i) {
      CO_ASSERT_OK(co_await m.Mkdir("/dir" + std::to_string(i)));
    }
    // Creating many directories must not grow client memory (Fig. 11).
    EXPECT_EQ(m.EstimateMemoryBytes(), before);
  }(mount_));
}

TEST_F(FuseMountTest, CloseBadFdFails) {
  Run([](FuseMount& m) -> sim::Task<void> {
    EXPECT_EQ((co_await m.Close(99)).code(), StatusCode::kInvalidArgument);
  }(mount_));
}

}  // namespace
}  // namespace dufs::vfs
