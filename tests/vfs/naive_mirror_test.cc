// NaiveMirrorFs is the paper's Fig. 1 strawman: every mutation fans out to
// each backend in order with no coordination. These tests pin down the
// fan-out semantics (all replicas see the mutation; reads come from
// backend 0) and — just as importantly — execute every Fanout call site.
// Each one hands a value-capturing lambda coroutine to Fanout, the exact
// shape a GCC 12 codegen bug double-destroys when the closure is passed as
// a temporary (see the comment atop naive_mirror.cc); a regression shows
// up here as a glibc abort, not a failed expectation.
#include "vfs/naive_mirror.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "sim/task.h"
#include "vfs/memfs.h"

namespace dufs::vfs {
namespace {

class NaiveMirrorTest : public ::testing::Test {
 protected:
  NaiveMirrorTest()
      : sim_(7),
        a_(sim_, "mdsA", {sim::Us(80)}),
        b_(sim_, "mdsB", {sim::Us(120)}),
        fs_({&a_, &b_}) {}

  // True iff `path` exists on the given replica.
  bool ExistsOn(MemFs& replica, std::string path) {
    bool found = false;
    sim::RunTask(sim_, [](MemFs& m, std::string p,
                          bool& out) -> sim::Task<void> {
      // Out-param: `found` lives in ExistsOn, which blocks on RunTask.
      out = (co_await m.GetAttr(p)).ok();
    }(replica, std::move(path), found));  // dufs-lint: allow(coro-ref-param)
    return found;
  }

  sim::Simulation sim_;
  MemFs a_;
  MemFs b_;
  NaiveMirrorFs fs_;
};

TEST_F(NaiveMirrorTest, MutationsReachEveryReplica) {
  sim::RunTask(sim_, [](NaiveMirrorFs& fs) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.Mkdir("/d", 0755)).ok());
    EXPECT_TRUE((co_await fs.Create("/d/f", 0644)).ok());
    EXPECT_TRUE((co_await fs.Chmod("/d/f", 0600)).ok());
    EXPECT_TRUE((co_await fs.Utimens("/d/f", 5, 6)).ok());
    EXPECT_TRUE((co_await fs.Truncate("/d/f", 128)).ok());
    EXPECT_TRUE((co_await fs.Symlink("/d/f", "/d/l")).ok());
    EXPECT_TRUE((co_await fs.Rename("/d/f", "/d/g")).ok());
  }(fs_));

  for (const char* path : {"/d", "/d/g", "/d/l"}) {
    EXPECT_TRUE(ExistsOn(a_, path)) << path;
    EXPECT_TRUE(ExistsOn(b_, path)) << path;
  }
  EXPECT_FALSE(ExistsOn(a_, "/d/f"));
  EXPECT_FALSE(ExistsOn(b_, "/d/f"));
}

TEST_F(NaiveMirrorTest, UnlinkAndRmdirRemoveFromEveryReplica) {
  sim::RunTask(sim_, [](NaiveMirrorFs& fs) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.Mkdir("/d", 0755)).ok());
    EXPECT_TRUE((co_await fs.Create("/d/f", 0644)).ok());
    EXPECT_TRUE((co_await fs.Unlink("/d/f")).ok());
    EXPECT_TRUE((co_await fs.Rmdir("/d")).ok());
  }(fs_));
  EXPECT_FALSE(ExistsOn(a_, "/d"));
  EXPECT_FALSE(ExistsOn(b_, "/d"));
}

TEST_F(NaiveMirrorTest, FanoutReportsBackendFailure) {
  // Rmdir of a non-empty directory must fail on every replica, and the
  // fan-out must surface that failure instead of swallowing it.
  sim::RunTask(sim_, [](NaiveMirrorFs& fs) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.Mkdir("/d", 0755)).ok());
    EXPECT_TRUE((co_await fs.Create("/d/f", 0644)).ok());
    EXPECT_FALSE((co_await fs.Rmdir("/d")).ok());
  }(fs_));
  EXPECT_TRUE(ExistsOn(a_, "/d/f"));
  EXPECT_TRUE(ExistsOn(b_, "/d/f"));
}

}  // namespace
}  // namespace dufs::vfs
