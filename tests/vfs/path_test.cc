#include "vfs/path.h"

#include <gtest/gtest.h>

namespace dufs::vfs {
namespace {

TEST(VfsPathTest, Split) {
  EXPECT_EQ(SplitPath("/"), (std::vector<std::string>{}));
  EXPECT_EQ(SplitPath("/a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPath("//a///b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPath(""), (std::vector<std::string>{}));
}

TEST(VfsPathTest, Join) {
  EXPECT_EQ(JoinPath("/", "a"), "/a");
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  EXPECT_EQ(JoinPath("", "a"), "/a");
}

TEST(VfsPathTest, Normalize) {
  EXPECT_EQ(NormalizePath("/a/./b"), "/a/b");
  EXPECT_EQ(NormalizePath("/a/b/../c"), "/a/c");
  EXPECT_EQ(NormalizePath("/../.."), "/");
  EXPECT_EQ(NormalizePath("//a//b//"), "/a/b");
  EXPECT_EQ(NormalizePath("/"), "/");
}

TEST(VfsPathTest, Validate) {
  EXPECT_TRUE(ValidateVirtualPath("/").ok());
  EXPECT_TRUE(ValidateVirtualPath("/a/b").ok());
  EXPECT_FALSE(ValidateVirtualPath("a/b").ok());
  EXPECT_FALSE(ValidateVirtualPath("/a/").ok());
  EXPECT_FALSE(ValidateVirtualPath("/a/../b").ok());
  EXPECT_FALSE(ValidateVirtualPath("").ok());
}

TEST(VfsPathTest, DirAndBase) {
  EXPECT_EQ(DirName("/a/b"), "/a");
  EXPECT_EQ(DirName("/a"), "/");
  EXPECT_EQ(DirName("/"), "/");
  EXPECT_EQ(BaseName("/a/b"), "b");
}

TEST(VfsPathTest, IsWithin) {
  EXPECT_TRUE(IsWithin("/a", "/a"));
  EXPECT_TRUE(IsWithin("/a", "/a/b"));
  EXPECT_TRUE(IsWithin("/", "/anything"));
  EXPECT_FALSE(IsWithin("/a", "/ab"));
  EXPECT_FALSE(IsWithin("/a/b", "/a"));
}

}  // namespace
}  // namespace dufs::vfs
