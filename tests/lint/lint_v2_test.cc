// Tests for the cross-TU analyzer (stage B): symbol-table extraction, the
// call graph, the interprocedural dataflow rules, and the stage-A parse
// cache. The on-disk fixture mini-tree (tests/lint/fixtures/tree, path baked
// in as DUFS_LINT_FIXTURE_TREE) pins each rule's TP/TN/suppression behavior
// against real files; the inline tests pin individual extraction facts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cache.h"
#include "callgraph.h"
#include "dataflow.h"
#include "lexer.h"
#include "rules.h"
#include "symtab.h"

namespace dufs::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Loads the whole fixture tree (paths relative to the tree root, sorted)
// into a Linter, optionally restricted to a subset of relative paths.
std::vector<Finding> LintFixtureTree(
    const std::set<std::string>& only = {}) {
  const fs::path root(DUFS_LINT_FIXTURE_TREE);
  std::vector<std::string> rels;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    rels.push_back(fs::relative(entry.path(), root).generic_string());
  }
  std::sort(rels.begin(), rels.end());
  Linter linter;
  for (const auto& rel : rels) {
    if (!only.empty() && only.count(rel) == 0) continue;
    linter.AddFile(rel, ReadFile(root / rel));
  }
  return linter.Run();
}

std::vector<std::tuple<std::string, int, std::string>> Keys(
    const std::vector<Finding>& findings, const std::string& rule = "") {
  std::vector<std::tuple<std::string, int, std::string>> out;
  for (const auto& f : findings) {
    if (rule.empty() || f.rule == rule) {
      out.emplace_back(f.file, f.line, f.rule);
    }
  }
  return out;
}

// --- fixture tree: every rule's TP/TN/suppression behavior ----------------

TEST(FixtureTreeTest, ExactFindingSet) {
  const auto keys = Keys(LintFixtureTree());
  const std::vector<std::tuple<std::string, int, std::string>> want = {
      {"src/api.h", 14, "coro-ref-param"},
      {"src/api.h", 29, "coro-ref-param"},
      {"src/discard.cc", 9, "task-discard-transitive"},
      {"src/discard.cc", 14, "task-discard-transitive"},
      {"src/escape.cc", 15, "coro-ref-escape"},
      {"src/escape.cc", 21, "coro-ref-escape"},
      {"src/escape.cc", 26, "coro-ref-escape"},
      {"src/holder.cc", 8, "coro-ref-param"},
      {"src/holder.cc", 11, "await-holding-ref"},
      {"src/holder.cc", 16, "coro-ref-param"},
      {"src/registry.cc", 10, "det-export-order"},
      {"src/registry.cc", 20, "det-export-order"},
  };
  EXPECT_EQ(keys, want);
}

TEST(FixtureTreeTest, EscapeRuleNeedsTheCrossTuTable) {
  // Without api.h's coroutine declarations in the symbol table, the very
  // same call sites are unresolvable and must stay silent.
  const auto f = LintFixtureTree({"src/escape.cc"});
  EXPECT_TRUE(Keys(f, "coro-ref-escape").empty());
}

TEST(FixtureTreeTest, TransitiveDiscardNeedsTheCrossTuTable) {
  // discard.cc alone: the wrappers live in wrap.cc, the Task producer in
  // api.h — no chain, no finding.
  const auto f = LintFixtureTree({"src/discard.cc"});
  EXPECT_TRUE(Keys(f, "task-discard-transitive").empty());
}

TEST(FixtureTreeTest, AwaitHoldingRefIsWarnSeverity) {
  for (const auto& f : LintFixtureTree()) {
    if (f.rule == "await-holding-ref") {
      EXPECT_EQ(RuleSeverity(f.rule), Severity::kWarn);
    } else {
      EXPECT_EQ(RuleSeverity(f.rule), Severity::kError) << f.rule;
    }
  }
}

// --- symbol-table extraction ----------------------------------------------

FileSummary Summarize(const std::string& src) {
  return BuildFileSummary(Lex("src/x.cc", src));
}

const FunctionSummary* FindFn(const FileSummary& s, const std::string& name) {
  for (const auto& fn : s.functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

TEST(SymtabTest, ExtractsSignatureAndBodyFacts) {
  const auto s = Summarize(
      "sim::Task<int> Server::Handle(std::string& req, Simulation& sim,\n"
      "                              int* out) {\n"
      "  co_await sim.Delay(1);\n"
      "  co_return Reply(req);\n"
      "}\n");
  const auto* fn = FindFn(s, "Handle");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->qualifier, "Server");
  EXPECT_TRUE(fn->returns_task);
  EXPECT_TRUE(fn->is_coroutine);
  EXPECT_TRUE(fn->has_body);
  ASSERT_EQ(fn->params.size(), 3u);
  EXPECT_TRUE(fn->params[0].is_ref);
  EXPECT_FALSE(fn->params[0].is_simulation);
  EXPECT_TRUE(fn->params[1].is_simulation);
  EXPECT_TRUE(fn->params[2].is_ptr);
  EXPECT_EQ(fn->params[2].name, "out");
}

TEST(SymtabTest, LambdaBodyDoesNotMakeTheEnclosingFunctionACoroutine) {
  const auto s = Summarize(
      "double Measure(Engine& e) {\n"
      "  e.Spawn([&]() -> sim::Task<void> { co_await e.Step(); }());\n"
      "  return e.Run();\n"
      "}\n");
  const auto* fn = FindFn(s, "Measure");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->is_coroutine);
}

TEST(SymtabTest, IterationContainerResolvesThroughMoveAlias) {
  const auto s = Summarize(
      "void Endpoint::FailAll() {\n"
      "  auto pending = std::move(pending_);\n"
      "  for (auto& [id, p] : pending) { p.Set(1); }\n"
      "}\n");
  const auto* fn = FindFn(s, "FailAll");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->iterations.size(), 1u);
  EXPECT_EQ(fn->iterations[0].container, "pending_");
  EXPECT_TRUE(fn->iterations[0].range_for);
}

TEST(SymtabTest, HeldRefNeedsAStatementBoundaryAfterTheAwait) {
  // The iterator is consumed inside the awaiting statement itself: its
  // arguments are evaluated before the frame suspends, so nothing is held.
  const auto same_stmt = Summarize(
      "sim::Task<int> Get(std::string k) {\n"
      "  auto it = map_.find(k);\n"
      "  co_return co_await Read(it->second);\n"
      "}\n");
  ASSERT_NE(FindFn(same_stmt, "Get"), nullptr);
  EXPECT_TRUE(FindFn(same_stmt, "Get")->held_refs.empty());

  const auto later_stmt = Summarize(
      "sim::Task<int> Get(std::string k) {\n"
      "  auto it = map_.find(k);\n"
      "  co_await Flush();\n"
      "  co_return it->second;\n"
      "}\n");
  const auto* fn = FindFn(later_stmt, "Get");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->held_refs.size(), 1u);
  EXPECT_EQ(fn->held_refs[0].name, "it");
  EXPECT_EQ(fn->held_refs[0].container, "map_");
  EXPECT_EQ(fn->held_refs[0].await_line, 3);
  EXPECT_EQ(fn->held_refs[0].use_line, 4);
}

TEST(SymtabTest, HeldRefTrackingStopsWhenTheNameIsRebound) {
  const auto s = Summarize(
      "sim::Task<int> Get(std::string k) {\n"
      "  auto it = map_.find(k);\n"
      "  co_await Flush();\n"
      "  it = map_.find(k);\n"
      "  co_return it->second;\n"
      "}\n");
  const auto* fn = FindFn(s, "Get");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->held_refs.empty());
}

TEST(SymtabTest, CallSitesRecordAwaitAndBareArguments) {
  const auto s = Summarize(
      "void Drive(std::string& buf, Scheduler& sched) {\n"
      "  sched.Enqueue(Fetch(buf, 3));\n"
      "}\n"
      "sim::Task<void> Waits() { co_await Fetch(x, 1); }\n");
  const auto* drive = FindFn(s, "Drive");
  ASSERT_NE(drive, nullptr);
  const CallSite* fetch = nullptr;
  for (const auto& c : drive->calls) {
    if (c.callee == "Fetch") fetch = &c;
  }
  ASSERT_NE(fetch, nullptr);
  EXPECT_FALSE(fetch->awaited);
  ASSERT_EQ(fetch->bare_args.size(), 2u);
  EXPECT_EQ(fetch->bare_args[0], "buf");

  const auto* waits = FindFn(s, "Waits");
  ASSERT_NE(waits, nullptr);
  ASSERT_EQ(waits->calls.size(), 1u);
  EXPECT_TRUE(waits->calls[0].awaited);
}

TEST(SymtabTest, UnorderedNamesIncludeAliasDeclaredEntities) {
  const auto s = Summarize(
      "using SessionMap = std::unordered_map<int, int>;\n"
      "struct S {\n"
      "  std::unordered_set<int> ids_;\n"
      "  SessionMap sessions_;\n"
      "};\n");
  const std::set<std::string> names(s.unordered_names.begin(),
                                    s.unordered_names.end());
  EXPECT_EQ(names, (std::set<std::string>{"ids_", "sessions_"}));
}

// --- call graph ------------------------------------------------------------

TEST(CallGraphTest, NamePredicateMatchesExportSurface) {
  EXPECT_TRUE(IsExportSinkName("ToJson"));
  EXPECT_TRUE(IsExportSinkName("WriteSarif"));
  EXPECT_TRUE(IsExportSinkName("Snapshot"));
  EXPECT_FALSE(IsExportSinkName("HandleRequest"));
}

TEST(CallGraphTest, ReachabilityIsTransitiveInBothDirections) {
  const auto s = Summarize(
      "void Leaf() { Mid(); }\n"
      "void Mid() { Emit(); }\n"
      "std::string Emit() { return ToJson(); }\n"
      "std::string ToJson() { return Render(); }\n"
      "std::string Render() { return \"{}\"; }\n");
  SymbolTable sym;
  sym.Add(&s);
  const CallGraph graph(sym);
  EXPECT_TRUE(graph.ReachesSink("Leaf"));
  EXPECT_TRUE(graph.ReachesSink("Emit"));
  // Render runs while the export is being produced.
  EXPECT_TRUE(graph.CalledFromSink("Render"));
  EXPECT_FALSE(graph.CalledFromSink("Leaf"));
}

// --- stage-A parse cache ---------------------------------------------------

const char kCacheSource[] =
    "sim::Task<void> Flush(int epoch);\n"
    "auto FlushSoon(int e) { return Flush(e); }\n"
    "std::string ToJson() {\n"
    "  std::string out;\n"
    "  for (const auto& [k, v] : index_) { out += k; }\n"
    "  return out;\n"
    "}\n"
    "std::unordered_map<std::string, int> index_;\n"
    "void Tick() {\n"
    "  rand();  // dufs-lint: allow(sim-time-source)\n"
    "}\n";

TEST(CacheTest, SerializeParseRoundTripIsLossless) {
  const FileArtifacts a = AnalyzeFile("src/cached.cc", kCacheSource);
  const std::string blob = SerializeArtifacts(a);
  const auto parsed = ParseArtifacts(blob);
  ASSERT_TRUE(parsed.has_value());
  // Re-serialization must reproduce the exact bytes: everything stage B
  // consumes survived the round trip.
  EXPECT_EQ(SerializeArtifacts(*parsed), blob);

  // And stage B must not be able to tell the difference.
  Linter fresh, cached;
  fresh.AddFile("src/cached.cc", kCacheSource);
  cached.AddArtifacts(*parsed);
  EXPECT_EQ(Keys(fresh.Run()), Keys(cached.Run()));
}

TEST(CacheTest, VersionOrCorruptionIsACacheMiss) {
  const FileArtifacts a = AnalyzeFile("src/cached.cc", kCacheSource);
  std::string blob = SerializeArtifacts(a);
  EXPECT_FALSE(ParseArtifacts("dufs-lint-cache-v1\n" + blob).has_value());
  // Unknown record before the end marker; truncation (no end marker).
  const std::string no_end = blob.substr(0, blob.size() - 4);
  EXPECT_FALSE(ParseArtifacts(no_end + "garbage record\nend\n").has_value());
  EXPECT_FALSE(ParseArtifacts(no_end).has_value());
  EXPECT_FALSE(
      ParseArtifacts(blob.substr(0, blob.size() / 2)).has_value());
  EXPECT_FALSE(ParseArtifacts("").has_value());
}

TEST(CacheTest, DiskRoundTripAndKeySensitivity) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "dufs_lint_cache").string();
  fs::remove_all(dir);
  const std::string key = CacheKey("src/cached.cc", kCacheSource);
  EXPECT_FALSE(LoadCachedArtifacts(dir, key).has_value());

  const FileArtifacts a = AnalyzeFile("src/cached.cc", kCacheSource);
  StoreCachedArtifacts(dir, key, a);
  const auto loaded = LoadCachedArtifacts(dir, key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(SerializeArtifacts(*loaded), SerializeArtifacts(a));

  // Any change to path or content must move to a different key.
  EXPECT_NE(CacheKey("src/other.cc", kCacheSource), key);
  EXPECT_NE(CacheKey("src/cached.cc", std::string(kCacheSource) + "\n"), key);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dufs::lint
