// In-process fixture tests for the dufs_lint rule engine: every rule gets at
// least one source that must fire (positive) and one conforming rewrite that
// must not (negative), plus the suppression machinery.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rules.h"

namespace dufs::lint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& src) {
  Linter linter;
  linter.AddFile(path, src);
  return linter.Run();
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const auto& f : findings) out.push_back(f.rule);
  return out;
}

// --- coro-capture-default -------------------------------------------------

TEST(LintCaptureTest, RefDefaultCaptureInCoroutineFires) {
  const auto f = Lint("src/x.cc",
                      "void F(Simulation& sim, int d) {\n"
                      "  sim.Spawn([&]() -> sim::Task<void> {\n"
                      "    co_await sim.Delay(d);\n"
                      "  }());\n"
                      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-capture-default");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintCaptureTest, CopyDefaultCaptureInCoroutineFires) {
  const auto f = Lint("src/x.cc",
                      "auto T(int d) {\n"
                      "  return [=]() -> sim::Task<int> { co_return d; }();\n"
                      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-capture-default");
}

TEST(LintCaptureTest, CapturelessCoroutineLambdaIsClean) {
  const auto f = Lint("src/x.cc",
                      "void F(Simulation& sim, int d) {\n"
                      "  sim.Spawn([](Simulation& s, int v) -> sim::Task<void> {\n"
                      "    co_await s.Delay(v);\n"
                      "  }(sim, d));\n"
                      "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintCaptureTest, RefDefaultCaptureInPlainLambdaIsClean) {
  const auto f = Lint("src/x.cc",
                      "int F(int d) {\n"
                      "  auto add = [&](int x) { return x + d; };\n"
                      "  return add(1);\n"
                      "}\n");
  EXPECT_TRUE(f.empty());
}

// --- coro-capture-ref -----------------------------------------------------

TEST(LintCaptureTest, ExplicitRefCaptureInCoroutineFires) {
  const auto f = Lint("src/x.cc",
                      "auto T(Config& cfg) {\n"
                      "  return [&cfg]() -> sim::Task<int> { co_return cfg.n; }();\n"
                      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-capture-ref");
}

TEST(LintCaptureTest, ThisCaptureInCoroutineFires) {
  const auto f = Lint("src/x.cc",
                      "sim::Task<int> C::T() {\n"
                      "  auto t = [this]() -> sim::Task<int> { co_return n_; }();\n"
                      "  co_return co_await std::move(t);\n"
                      "}\n");
  EXPECT_EQ(Rules(f), std::vector<std::string>{"coro-capture-ref"});
}

TEST(LintCaptureTest, ValueCaptureInCoroutineIsClean) {
  const auto f = Lint("src/x.cc",
                      "auto T(Config cfg) {\n"
                      "  return [cfg]() -> sim::Task<int> { co_return cfg.n; }();\n"
                      "}\n");
  EXPECT_TRUE(f.empty());
}

// A lambda returning sim::Task is a coroutine factory even without co_* in
// its (non-coroutine) body; its captures obey the same rules.
TEST(LintCaptureTest, TaskReturningLambdaWithoutCoAwaitStillChecked) {
  const auto f = Lint("src/x.cc",
                      "void F(C& c) {\n"
                      "  auto make = [&c]() -> sim::Task<int> {\n"
                      "    co_return c.n;\n"
                      "  };\n"
                      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-capture-ref");
}

// --- coro-ref-param -------------------------------------------------------

TEST(LintRefParamTest, ConstRefParamOnCoroutineFires) {
  const auto f =
      Lint("src/x.h",
           "#pragma once\n"
           "sim::Task<Status> Lookup(const std::string& path);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-ref-param");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRefParamTest, ByValueParamIsClean) {
  const auto f = Lint("src/x.h",
                      "#pragma once\n"
                      "sim::Task<Status> Lookup(std::string path);\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintRefParamTest, SimulationRefIsExempt) {
  const auto f = Lint("src/x.h",
                      "#pragma once\n"
                      "sim::Task<int> Add(Simulation& sim, int a, int b);\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintRefParamTest, LambdaParamsAreExempt) {
  const auto f =
      Lint("src/x.cc",
           "void F(Simulation& sim, Fixture& fx) {\n"
           "  RunTask(sim, [](Fixture& f) -> sim::Task<void> {\n"
           "    co_await f.Step();\n"
           "  }(fx));\n"
           "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintRefParamTest, NonCoroutineRefParamIsClean) {
  const auto f = Lint("src/x.h",
                      "#pragma once\n"
                      "Status Lookup(const std::string& path);\n");
  EXPECT_TRUE(f.empty());
}

// --- sim-time-source ------------------------------------------------------

TEST(LintTimeSourceTest, RandomDeviceFires) {
  const auto f = Lint("src/x.cc", "std::random_device rd;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "sim-time-source");
}

TEST(LintTimeSourceTest, SystemClockFires) {
  const auto f =
      Lint("src/x.cc", "auto t = std::chrono::system_clock::now();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "sim-time-source");
}

TEST(LintTimeSourceTest, RandCallFires) {
  const auto f = Lint("src/x.cc", "int j = rand() % 10;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "sim-time-source");
}

TEST(LintTimeSourceTest, MemberNamedRandIsClean) {
  const auto f = Lint("src/x.cc", "int j = gen.rand() % 10;\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintTimeSourceTest, RngImplementationFileIsExempt) {
  const auto f =
      Lint("src/common/rng.cc", "std::random_device rd;\nsrand(rd());\n");
  EXPECT_TRUE(f.empty());
}

// --- task-discard ---------------------------------------------------------

TEST(LintTaskDiscardTest, DroppedTaskCallFires) {
  Linter linter;
  linter.AddFile("src/a.h",
                 "#pragma once\n"
                 "sim::Task<Status> Mkdir(std::string path);\n");
  linter.AddFile("src/b.cc",
                 "void F(Client& c) {\n"
                 "  c.Mkdir(\"/a\");\n"
                 "}\n");
  const auto f = linter.Run();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "task-discard");
  EXPECT_EQ(f[0].file, "src/b.cc");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintTaskDiscardTest, AwaitedTaskIsClean) {
  Linter linter;
  linter.AddFile("src/a.h",
                 "#pragma once\n"
                 "sim::Task<Status> Mkdir(std::string path);\n");
  linter.AddFile("src/b.cc",
                 "sim::Task<void> F(Client c) {\n"
                 "  co_await c.Mkdir(\"/a\");\n"
                 "}\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTaskDiscardTest, HeldTaskIsClean) {
  Linter linter;
  linter.AddFile("src/a.h",
                 "#pragma once\n"
                 "sim::Task<Status> Mkdir(std::string path);\n");
  linter.AddFile("src/b.cc",
                 "void F(Client& c) {\n"
                 "  auto t = c.Mkdir(\"/a\");\n"
                 "}\n");
  EXPECT_TRUE(linter.Run().empty());
}

// A name declared both as Task-returning and as an ordinary function is
// ambiguous and must not fire.
TEST(LintTaskDiscardTest, AmbiguousNameIsClean) {
  Linter linter;
  linter.AddFile("src/a.h",
                 "#pragma once\n"
                 "sim::Task<Status> Mkdir(std::string path);\n"
                 "Status Mkdir(std::string path, int flags);\n");
  linter.AddFile("src/b.cc",
                 "void F(Client& c) {\n"
                 "  c.Mkdir(\"/a\", 0);\n"
                 "}\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(LintTaskDiscardTest, TaskFunctionNamesExposed) {
  Linter linter;
  linter.AddFile("src/a.h",
                 "#pragma once\n"
                 "sim::Task<Status> Mkdir(std::string path);\n"
                 "sim::Future<int> Pull();\n"
                 "int Plain();\n");
  const auto names = linter.TaskFunctionNames();
  EXPECT_EQ(names, (std::vector<std::string>{"Mkdir", "Pull"}));
}

// --- include-hygiene ------------------------------------------------------

TEST(LintIncludeTest, MissingPragmaOnceFires) {
  const auto f = Lint("src/x.h", "struct S {};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-hygiene");
}

TEST(LintIncludeTest, PragmaOnceAfterCodeFires) {
  const auto f = Lint("src/x.h",
                      "struct S {};\n"
                      "#pragma once\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-hygiene");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintIncludeTest, UsingNamespaceInHeaderFires) {
  const auto f = Lint("src/x.h",
                      "#pragma once\n"
                      "using namespace std;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-hygiene");
}

TEST(LintIncludeTest, ParentEscapingIncludeFires) {
  const auto f = Lint("src/zk/x.cc",
                      "#include \"zk/x.h\"\n"
                      "#include \"../common/log.h\"\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-hygiene");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintIncludeTest, SelfIncludeNotFirstFires) {
  const auto f = Lint("src/zk/x.cc",
                      "#include <vector>\n"
                      "#include \"zk/x.h\"\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "include-hygiene");
}

TEST(LintIncludeTest, WellFormedPairIsClean) {
  Linter linter;
  linter.AddFile("src/zk/x.h",
                 "#pragma once\n"
                 "#include <string>\n"
                 "struct S {};\n");
  linter.AddFile("src/zk/x.cc",
                 "#include \"zk/x.h\"\n"
                 "#include <vector>\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(LintIncludeTest, TestFileWithoutSelfHeaderIsClean) {
  const auto f = Lint("tests/zk/x_test.cc", "#include <vector>\n");
  EXPECT_TRUE(f.empty());
}

// --- trace-span-name ------------------------------------------------------

TEST(LintObsNameTest, UpperCaseSpanNameFires) {
  const auto f =
      Lint("src/x.cc", "obs::Span span(obs_, \"ZK RPC\", \"zk\");\n");
  ASSERT_GE(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "trace-span-name");
}

TEST(LintObsNameTest, ConformingNamesAreClean) {
  const auto f = Lint("src/x.cc",
                      "obs::Span span(obs_, \"zk-rpc\", \"zk\");\n"
                      "auto c = obs_.counter(\"zk.requests\");\n"
                      "auto t = obs_.timer(\"op.stat_ns\");\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsNameTest, BadCounterNameFires) {
  const auto f = Lint("src/x.cc", "auto c = obs_.counter(\"Zk.Requests\");\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "trace-span-name");
}

TEST(LintObsNameTest, NestedCallArgumentsAreNotChecked) {
  // Only depth-1 string literals are names; nested call args are free text.
  const auto f =
      Lint("src/x.cc", "obs::Span span(obs_, \"zk-rpc\", Describe(\"UP\"));\n");
  EXPECT_TRUE(f.empty());
}

// --- obs-key-literal ------------------------------------------------------

TEST(LintObsKeyTest, ConcatenatedCounterKeyFires) {
  const auto f = Lint(
      "src/x.cc", "obs_.counter(\"op.\" + phase + \"_count\").Inc();\n");
  ASSERT_GE(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "obs-key-literal");
}

TEST(LintObsKeyTest, VariableTimerKeyFires) {
  const auto f = Lint("src/x.cc", "auto t = obs_.timer(key);\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "obs-key-literal");
}

TEST(LintObsKeyTest, LiteralKeysAreClean) {
  const auto f = Lint("src/x.cc",
                      "auto c = obs_.counter(\"zk.requests\");\n"
                      "auto g = scope->gauge(\"zk.read_queue\");\n"
                      "auto h = reg.scope(\"a\").histogram(\"op.stat_ns\");\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsKeyTest, DeclarationsAndFreeFunctionsAreNotLookups) {
  const auto f = Lint("src/x.h",
                      "#pragma once\n"
                      "Counter counter(const std::string& key);\n"
                      "int n = counter(key);\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsKeyTest, ObsForwardersAreExempt) {
  const auto f = Lint("src/obs/obs.h",
                      "#pragma once\n"
                      "Counter counter(const std::string& key) const {\n"
                      "  return metrics->counter(key);\n"
                      "}\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsKeyTest, RuntimeSpanNameFires) {
  const auto f = Lint(
      "src/x.cc",
      "obs::Span span(obs_, (\"zk-\" + kind).c_str(), \"zk\");\n");
  ASSERT_GE(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "obs-key-literal");
}

TEST(LintObsKeyTest, ForwardedSpanNameParamIsTolerated) {
  // OpScope forwards a `const char* name` parameter; a bare identifier in a
  // span constructor is allowed — only runtime assembly is flagged.
  const auto f = Lint(
      "src/x.cc", "span_ = obs::Span::Root(client.obs_, name, \"op\");\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsKeyTest, RuntimeProfScopeNameFires) {
  // ProfScope names are held by pointer inside profiler samples: runtime
  // assembly is both unenumerable and a dangling-pointer hazard.
  const auto f = Lint(
      "src/x.cc",
      "prof::ProfScope s((\"node-\" + id).c_str(), "
      "prof::FrameKind::kNode);\n");
  ASSERT_GE(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "obs-key-literal");
}

TEST(LintObsKeyTest, LiteralAndInternedProfScopeNamesAreClean) {
  const auto f = Lint(
      "src/x.cc",
      "prof::ProfScope a(\"engine.wheel\", prof::FrameKind::kEnginePhase);\n"
      "prof::ProfScope b(obs_.prof_name, prof::FrameKind::kNode);\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsNameTest, BadProfScopeNameFiresSpanNameRule) {
  const auto f = Lint(
      "src/x.cc",
      "prof::ProfScope s(\"Engine Wheel\", prof::FrameKind::kEnginePhase);\n");
  ASSERT_GE(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "trace-span-name");
}

// --- sim-hot-alloc --------------------------------------------------------

TEST(LintHotAllocTest, StdFunctionInSimFires) {
  const auto f = Lint("src/sim/x.h",
                      "#pragma once\n"
                      "struct S { std::function<void()> cb; };\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "sim-hot-alloc");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintHotAllocTest, ContainerInSimFires) {
  const auto f =
      Lint("src/sim/x.h",
           "#pragma once\n"
           "std::deque<int> a;\n"
           "std::unordered_map<int, int> b;\n"
           "std::priority_queue<int> c;\n");
  EXPECT_EQ(Rules(f),
            (std::vector<std::string>{"sim-hot-alloc", "sim-hot-alloc",
                                      "sim-hot-alloc"}));
}

TEST(LintHotAllocTest, OutsideSimDoesNotFire) {
  const auto f = Lint("src/zk/x.h",
                      "#pragma once\n"
                      "std::function<void()> cb;\n"
                      "std::map<int, int> m;\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintHotAllocTest, VectorAndAllowedTypesDoNotFire) {
  const auto f = Lint("src/sim/x.h",
                      "#pragma once\n"
                      "std::vector<int> v;\n"
                      "std::optional<int> o;\n"
                      "std::shared_ptr<int> p;\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintHotAllocTest, SuppressibleWithReason) {
  const auto f = Lint(
      "src/sim/x.h",
      "#pragma once\n"
      "std::map<int, int> cold;  // dufs-lint: allow(sim-hot-alloc) cold\n");
  EXPECT_TRUE(f.empty());
}

// --- obs-hot-path-alloc ---------------------------------------------------

TEST(LintObsHotAllocTest, StringInFlightRecorderFires) {
  const auto f = Lint("src/obs/flight.h",
                      "#pragma once\n"
                      "struct Record { std::string name; };\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "obs-hot-path-alloc");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintObsHotAllocTest, BannedContainersInSloFire) {
  const auto f = Lint("src/obs/slo.h",
                      "#pragma once\n"
                      "std::map<int, int> per_op;\n"
                      "std::function<void()> on_close;\n");
  EXPECT_EQ(Rules(f), (std::vector<std::string>{"obs-hot-path-alloc",
                                                "obs-hot-path-alloc"}));
}

TEST(LintObsHotAllocTest, PodAndReservedVectorsDoNotFire) {
  // The rule bans node containers and std::string; fixed arrays and flat
  // vectors (reserved once at setup) are the sanctioned storage.
  const auto f = Lint("src/obs/flight.h",
                      "#pragma once\n"
                      "struct Record { const char* name; long dur; };\n"
                      "std::vector<Record> slots;\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsHotAllocTest, OtherObsFilesAreOutOfScope) {
  // Tracer / metrics registry are not on the always-on path; only the
  // flight recorder and sliding-window SLO code are scoped.
  const auto f = Lint("src/obs/trace.h",
                      "#pragma once\n"
                      "std::string name;\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintObsHotAllocTest, DumpSerializationSuppressibleWithReason) {
  const auto f = Lint(
      "src/obs/flight.cc",
      "std::string out;  // dufs-lint: allow(obs-hot-path-alloc) dump\n");
  EXPECT_TRUE(f.empty());
}

// --- suppressions ---------------------------------------------------------

TEST(LintSuppressionTest, TrailingAllowSuppresses) {
  const auto f = Lint(
      "src/x.h",
      "#pragma once\n"
      "sim::Task<Status> L(const std::string& p);  // dufs-lint: allow(coro-ref-param)\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSuppressionTest, AloneOnPreviousLineSuppresses) {
  const auto f = Lint("src/x.h",
                      "#pragma once\n"
                      "// dufs-lint: allow(coro-ref-param)\n"
                      "sim::Task<Status> L(const std::string& p);\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSuppressionTest, AllWildcardSuppresses) {
  const auto f = Lint("src/x.cc",
                      "int j = rand() % 10;  // dufs-lint: allow(all)\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintSuppressionTest, WrongRuleDoesNotSuppress) {
  const auto f = Lint("src/x.cc",
                      "int j = rand() % 10;  // dufs-lint: allow(task-discard)\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "sim-time-source");
}

TEST(LintSuppressionTest, AllowOnDistantLineDoesNotSuppress) {
  const auto f = Lint("src/x.cc",
                      "// dufs-lint: allow(sim-time-source)\n"
                      "int x = 0;\n"
                      "int j = rand() % 10;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "sim-time-source");
}

// --- engine plumbing ------------------------------------------------------

TEST(LintEngineTest, FindingsSortedByFileLineRule) {
  Linter linter;
  linter.AddFile("src/b.cc", "int j = rand();\nstd::random_device rd;\n");
  linter.AddFile("src/a.cc", "std::mt19937 gen;\n");
  const auto f = linter.Run();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].file, "src/a.cc");
  EXPECT_EQ(f[1].file, "src/b.cc");
  EXPECT_EQ(f[1].line, 1);
  EXPECT_EQ(f[2].line, 2);
}

TEST(LintEngineTest, EveryRuleHasDocumentation) {
  const auto& docs = RuleDocs();
  ASSERT_EQ(docs.size(), 14u);
  for (const auto& doc : docs) {
    EXPECT_NE(doc.id, nullptr);
    EXPECT_GT(std::string(doc.summary).size(), 0u);
    EXPECT_GT(std::string(doc.rationale).size(), 0u);
    EXPECT_GT(std::string(doc.bad).size(), 0u);
    EXPECT_GT(std::string(doc.good).size(), 0u);
  }
}

TEST(LintEngineTest, CommentsAndStringsAreNotCode) {
  const auto f = Lint("src/x.cc",
                      "// std::random_device in a comment\n"
                      "const char* s = \"rand() inside a string\";\n"
                      "/* system_clock in a block comment */\n");
  EXPECT_TRUE(f.empty());
}

}  // namespace
}  // namespace dufs::lint
