// await-holding-ref fixtures: iterators/element refs held across a
// suspension point inside a coroutine.
#include "api.h"

namespace fx {

// TP: iterator obtained before the await, dereferenced after it.
sim::Task<int> Registry::Lookup(const std::string& key) {
  auto it = entries_.find(key);
  co_await Flush(0);
  co_return it->second;
}

// TN: the use sits in the awaiting statement itself — arguments are
// evaluated before the frame suspends.
sim::Task<int> LookupSameStatement(Registry& reg, std::string key) {
  auto it = cache_.find(key);
  co_return co_await reg.Lookup(it->second);
}

// TN: the iterator is re-acquired (rebound) after the await.
sim::Task<int> LookupRebound(std::string key) {
  auto it = cache_.find(key);
  co_await Flush(1);
  it = cache_.find(key);
  co_return it->second;
}

// Suppressed TP.
sim::Task<int> LookupAllowed(std::string key) {
  auto it = cache_.find(key);
  co_await Flush(2);
  co_return it->second;  // dufs-lint: allow(await-holding-ref)
}

}  // namespace fx
