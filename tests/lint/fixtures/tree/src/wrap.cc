// task-discard-transitive fixtures, producer side: an `auto` wrapper whose
// task-ness is only visible once Flush's declaration (api.h) is in the
// symbol table.
#include "api.h"

namespace fx {

auto FlushSoon(int epoch) { return Flush(epoch); }

// Second hop: wrapper-of-wrapper still resolves to the underlying Task.
auto FlushLater(int epoch) { return FlushSoon(epoch + 1); }

}  // namespace fx
