// det-export-order fixtures: the members' unordered-ness is declared in
// api.h; the hash-order iterations live here.
#include "api.h"

namespace fx {

// TP: export-path variant — a serializer walking an unordered member.
std::string Registry::ToJson() const {
  std::string out = "{";
  for (const auto& [key, value] : entries_) {
    out += key;
  }
  return out + "}";
}

// TP: completion variant — waiters resolved in hash order through a
// local moved-from alias of the unordered member.
void Registry::FailAll() {
  auto drained = std::move(waiters_);
  for (auto& [id, waiter] : drained) {
    waiter.Set(-1);
  }
}

// TN: erase-only maintenance walk, no export and no completions.
void Registry::Prune() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second == 0) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

// Suppressed TP.
std::string DumpRegistryJson(const Registry& r) {
  std::string out;
  std::unordered_map<int, int> index;
  // dufs-lint: allow(det-export-order)
  for (const auto& [id, pos] : index) {
    out += Serialize(id, pos);
  }
  return out;
}

}  // namespace fx
