// task-discard-transitive fixtures, consumer side: the discarded calls
// resolve through wrap.cc's wrappers into api.h's Task producer.
#include "api.h"

namespace fx {

// TP: the wrapper's Task is dropped on the floor.
void TickOnce() {
  FlushSoon(1);
}

// TP: two wrapper hops away from the Task producer.
void TickTwice() {
  FlushLater(2);
}

// TN: awaited.
sim::Task<void> TickAwaited() {
  co_await FlushSoon(3);
}

// TN: held in a variable (ownership taken, not discarded).
void TickHeld(Scheduler& sched) {
  auto pending = FlushSoon(4);
  sched.Enqueue(pending);
}

// Suppressed TP.
void TickAllowed() {
  FlushLater(5);  // dufs-lint: allow(task-discard-transitive)
}

}  // namespace fx
