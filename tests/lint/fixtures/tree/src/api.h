// Cross-TU lint fixtures: declarations consumed by the .cc fixtures. The
// files in this mini-tree are lexed, never compiled — they exist to pin the
// interprocedural rules' TP/TN/suppression behavior (tests/lint/lint_v2_test.cc
// and the dufs_lint_fixtures ctest load them from disk).
#pragma once

#include <string>
#include <unordered_map>

namespace fx {

// Hazard base case for coro-ref-escape: a Task coroutine keeping a ref and
// a pointer parameter alive in its frame across suspension.
sim::Task<int> FetchValue(std::string& out);
sim::Task<void> Pump(std::string* sink, int n);

// Direct Task producer for the task-discard-transitive chain.
sim::Task<void> Flush(int epoch);

struct Waiter {
  void Set(int v);
};

class Registry {
 public:
  std::string ToJson() const;
  void FailAll();
  void Prune();
  sim::Task<int> Lookup(const std::string& key);

 private:
  std::unordered_map<std::string, int> entries_;
  std::unordered_map<int, Waiter> waiters_;
};

}  // namespace fx
