// coro-ref-escape fixtures: the hazard comes from api.h's coroutine
// declarations, the wrapper hop and the call sites live here — the rule only
// fires with the cross-TU symbol table assembled.
#include "api.h"

namespace fx {

// Wrapper propagation: forwards its own ref param into FetchValue's frame
// without awaiting, so `text` becomes hazardous by the fixpoint.
auto BeginFetch(std::string& text) { return FetchValue(text); }

// TP: a local forwarded by reference through the wrapper outlives the call.
void EscapeThroughWrapper(Scheduler& sched) {
  std::string local;
  sched.Enqueue(BeginFetch(local));
}

// TP: address of a local escapes into a suspending frame.
void EscapeAddress(Scheduler& sched) {
  std::string buf;
  sched.Enqueue(Pump(&buf, 3));
}

// TP: by-reference lambda capture passed into a coroutine.
void EscapeLambda(Scheduler& sched, int n) {
  sched.Enqueue(Pump([&] { return n; }, 1));
}

// TN: awaiting keeps the caller's scope alive across the callee's frame.
sim::Task<int> AwaitIsClean() {
  std::string local;
  co_return co_await FetchValue(local);
}

// TN: members (trailing underscore) are object-lived, not scope-lived.
struct Holder {
  void Kick(Scheduler& sched) { sched.Enqueue(Pump(&buf_, 1)); }
  std::string buf_;
};

// Suppressed TP: annotated escape stays out of the findings.
void EscapeAllowed(Scheduler& sched) {
  std::string tmp;
  sched.Enqueue(Pump(&tmp, 2));  // dufs-lint: allow(coro-ref-escape)
}

}  // namespace fx
