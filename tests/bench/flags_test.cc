#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dufs::bench {
namespace {

// Builds a Flags from a plain argument list ("prog" is prepended).
Flags Make(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "prog";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data(), "usage text");
}

TEST(FlagsTest, EqualsAndSpaceForms) {
  auto flags = Make({"--seed=7", "--procs", "64"});
  EXPECT_EQ(flags.Int("seed", 0), 7);
  EXPECT_EQ(flags.Int("procs", 0), 64);
  EXPECT_EQ(flags.Int("absent", 13), 13);
}

TEST(FlagsTest, BoolForms) {
  auto flags = Make({"--quick", "--cache=0", "--verbose=false"});
  EXPECT_TRUE(flags.Bool("quick"));
  EXPECT_FALSE(flags.Bool("cache"));
  EXPECT_FALSE(flags.Bool("verbose"));
  EXPECT_FALSE(flags.Bool("absent"));
  EXPECT_TRUE(flags.Bool("absent", true));
}

TEST(FlagsTest, StrReturnsValueOrFallback) {
  auto flags = Make({"--out=/tmp/x.json"});
  EXPECT_EQ(flags.Str("out", "default"), "/tmp/x.json");
  EXPECT_EQ(flags.Str("absent", "default"), "default");
  // The fallback must survive being passed by value (the old
  // `std::move(fallback)`-in-a-ternary pessimized and obscured this).
  const std::string keep = "keep-me";
  EXPECT_EQ(flags.Str("absent", keep), "keep-me");
  EXPECT_EQ(keep, "keep-me");
}

TEST(FlagsTest, UnknownFlagsAreIgnoredNotFatal) {
  // Unrecognized --flags parse fine and are simply never read back: benches
  // share command lines.
  auto flags = Make({"--no-such-flag=1", "--seed=3"});
  EXPECT_EQ(flags.Int("seed", 0), 3);
}

TEST(FlagsDeathTest, PositionalArgumentAborts) {
  EXPECT_EXIT(Make({"positional"}), testing::ExitedWithCode(2),
              "unexpected arg: positional");
}

TEST(FlagsDeathTest, PositionalAfterFlagsAborts) {
  // "--procs 64" consumes 64 as the value; a second bare token is an error.
  EXPECT_EXIT(Make({"--procs", "64", "stray"}), testing::ExitedWithCode(2),
              "unexpected arg: stray");
}

TEST(FlagsTest, IntListParsesCommaSeparated) {
  auto flags = Make({"--procs=16,32,64"});
  EXPECT_EQ(flags.IntList("procs", {}), (std::vector<long>{16, 32, 64}));
  EXPECT_EQ(flags.IntList("absent", {1, 2}), (std::vector<long>{1, 2}));
}

TEST(FlagsTest, IntListSkipsEmptySegments) {
  // Trailing / doubled commas used to parse as zeros, silently adding a
  // procs=0 data point to a sweep.
  EXPECT_EQ(Make({"--procs=16,32,"}).IntList("procs", {}),
            (std::vector<long>{16, 32}));
  EXPECT_EQ(Make({"--procs=16,,32"}).IntList("procs", {}),
            (std::vector<long>{16, 32}));
  EXPECT_TRUE(Make({"--procs="}).IntList("procs", {7}).empty());
}

TEST(FlagsTest, SingleElementIntList) {
  EXPECT_EQ(Make({"--procs=256"}).IntList("procs", {}),
            (std::vector<long>{256}));
}

TEST(JsonHelpersTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonHelpersTest, MetricsJsonWriterShape) {
  MetricsJsonWriter out;
  HotPathCounters c;
  c.ops = 100;
  c.seconds = 2;
  c.zk_requests = 150;
  out.AddCounters("cfg \"a\"", c);
  out.AddValue("readdir_us", 12.5);
  SeriesTable table("procs", {"dufs", "basic"});
  table.AddRow(64, {10.0, 5.0});
  out.AddTable("fig", table);
  out.SetRegistryJson("{\"nodes\":{}}");
  const std::string json = out.ToJson();
  EXPECT_NE(json.find("\"label\":\"cfg \\\"a\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_per_s\":50"), std::string::npos);
  EXPECT_NE(json.find("\"zk_requests\":150"), std::string::npos);
  EXPECT_NE(json.find("\"readdir_us\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":[[64,10,5]]"), std::string::npos);
  EXPECT_NE(json.find("\"registry\":{\"nodes\":{}}"), std::string::npos);
}

}  // namespace
}  // namespace dufs::bench
