# Determinism gate for the engine self-bench: run micro_core --selfbench
# twice with the same seed and require the sim-side metrics export to be
# byte-identical. Wall-clock rates naturally differ between runs, so the
# compared file carries only simulation-deterministic values (event counts
# and final sim clocks) — the scheduler swap must never change those.
#
# Invoked by ctest as:
#   cmake -DBENCH=<micro_core> -DWORKDIR=<dir> -P selfbench_twice.cmake

if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "usage: cmake -DBENCH=... -DWORKDIR=... -P selfbench_twice.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")

# Small sizes keep the gate fast; one rep is enough for the deterministic
# fields (reps only tighten the wall-clock timings, which are not compared).
# --profile-every runs the CPU profiler in deterministic count mode (fold
# every Nth dispatch, no signals), so its folded export is byte-compared
# too: sample counts follow the event order, and the event order must not
# drift.
set(ARGS --selfbench --seed=7 --reps=1 --churn-events=100000
    --churn-timers=256 --coro-procs=64 --coro-rounds=200 --spawns=20000)

foreach(run 1 2)
  execute_process(
    COMMAND "${BENCH}" ${ARGS}
      --metrics-json=${WORKDIR}/selfbench_${run}.json
      --profile=${WORKDIR}/selfbench_${run}.folded --profile-every=64
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "run ${run} of ${BENCH} failed with exit code ${rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    "${WORKDIR}/selfbench_1.json" "${WORKDIR}/selfbench_2.json"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "self-bench sim metrics differ between two runs with --seed=7: the "
    "engine scheduler is no longer deterministic")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    "${WORKDIR}/selfbench_1.folded" "${WORKDIR}/selfbench_2.folded"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "count-mode CPU profile differs between two runs with --seed=7: either "
    "the event order drifted or the profiler's context stack is "
    "nondeterministic")
endif()
