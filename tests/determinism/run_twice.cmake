# Determinism regression gate: run the ablation bench twice with the same
# seed and require the metrics and trace exports to be byte-identical.
#
# Invoked by ctest as:
#   cmake -DBENCH=<ablation_fastpath> -DWORKDIR=<dir> -P run_twice.cmake
#
# Any divergence means process entropy leaked into the simulation (exactly
# what the sim-time-source lint rule and the DUFS_AUDIT layer exist to keep
# out), so the test fails hard with the first differing file.

if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=... -DWORKDIR=... -P run_twice.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")

# Small sizes keep the gate fast; the seed is arbitrary but fixed.
# --timeline folds the sim-time-series sampler into the byte-compared
# metrics export, so sampler nondeterminism fails this gate too; --slo arms
# the incident engine and folds its report (sliding windows, burn rates)
# into the same comparison.  A caller may override the whole flag set with
# -DEXTRA_ARGS (semicolon-separated) for benches with a different CLI.
if(DEFINED EXTRA_ARGS)
  set(ARGS ${EXTRA_ARGS})
else()
  set(ARGS --seed=7 --width=8 --files=4 --rounds=2 --procs=8 --items=4
      --timeline --slo=create:2ms:0.01)
endif()

# --profile rides along in wall-clock signal mode to prove profiling does
# not perturb the simulation (the byte-compared exports must stay
# identical). The folded profiles themselves are wall-clock sampled, hence
# nondeterministic BY DESIGN, and are deliberately NOT byte-compared — see
# the export-determinism table in DESIGN.md §14.
foreach(run 1 2)
  execute_process(
    COMMAND "${BENCH}" ${ARGS}
      --metrics-json=${WORKDIR}/metrics_${run}.json
      --trace=${WORKDIR}/trace_${run}.json
      --profile=${WORKDIR}/prof_${run}.folded --profile-hz=997
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "run ${run} of ${BENCH} failed with exit code ${rc}")
  endif()
endforeach()

foreach(kind metrics trace)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORKDIR}/${kind}_1.json" "${WORKDIR}/${kind}_2.json"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${kind} export differs between two runs with --seed=7: the "
      "simulation is no longer deterministic")
  endif()
endforeach()
