# CPU-profile gate: run the engine self-bench under the deterministic
# count-mode profiler (fold every Nth dispatch — no signals, no wall clock)
# and hold its CPU distribution against the checked-in baseline
# (bench/baselines/PROF_micro_core.folded) with profstats --compare.
#
# Count-mode sample counts follow the simulation's event order, so the
# folded export is byte-stable across runs AND machines: a drift here means
# the engine genuinely spends its dispatches differently than the baseline
# commit (or the baseline needs a deliberate regen — see EXPERIMENTS.md).
#
# Invoked by ctest (and the CI cpu-profile job) as:
#   cmake -DBENCH=<micro_core> -DPROFSTATS=<profstats> -DBASELINE=<folded>
#         -DWORKDIR=<dir> -P cpu_profile_gate.cmake

if(NOT DEFINED BENCH OR NOT DEFINED PROFSTATS OR NOT DEFINED BASELINE
   OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "usage: cmake -DBENCH=... -DPROFSTATS=... -DBASELINE=... -DWORKDIR=... "
    "-P cpu_profile_gate.cmake")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")

# Pinned workload: MUST match the flags the baseline was generated with
# (EXPERIMENTS.md "regenerating the CPU baseline"). One rep — count-mode
# folds accumulate across reps, so the rep count changes the counts.
set(ARGS --selfbench --seed=1 --reps=1 --churn-events=200000
    --churn-timers=256 --coro-procs=64 --coro-rounds=200 --spawns=50000
    --profile-every=64)

foreach(run 1 2)
  execute_process(
    COMMAND "${BENCH}" ${ARGS} --profile=${WORKDIR}/prof_${run}.folded
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "run ${run} of ${BENCH} failed with exit code ${rc}")
  endif()
endforeach()

# Two runs must agree to the byte before the baseline comparison means
# anything.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    "${WORKDIR}/prof_1.folded" "${WORKDIR}/prof_2.folded"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "count-mode profile differs between two identical runs: the profiler "
    "or the event order is nondeterministic")
endif()

# 5 share-points of drift on any frame holding >= 1% fails the gate.
execute_process(
  COMMAND "${PROFSTATS}" --compare "${BASELINE}" "${WORKDIR}/prof_1.folded"
    --tolerance=0.05 --min-share=0.01
  OUTPUT_VARIABLE report
  RESULT_VARIABLE rc)
message(STATUS "profstats --compare vs baseline:\n${report}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "CPU distribution drifted from bench/baselines/PROF_micro_core.folded "
    "(exit ${rc}); if intentional, regenerate the baseline as described in "
    "EXPERIMENTS.md")
endif()
