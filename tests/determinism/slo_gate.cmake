# Incident-observability gate: inject a journal disk that degrades mid-run
# (bench/anomaly_slowfsync.cc) and require
#   1. the fsync-stall detector fires (the bench itself exits 1 otherwise,
#      via --expect-anomaly),
#   2. the flight-recorder dumps and the metrics export (which embeds the
#      incident report) are byte-identical across two runs, and
#   3. tracestats --explain-dump attributes at least half of the anomaly
#      window's mean-latency growth to the fsync category.
#
# Invoked by ctest as:
#   cmake -DBENCH=<anomaly_slowfsync> -DTRACESTATS=<tracestats>
#         -DWORKDIR=<dir> -P slo_gate.cmake

if(NOT DEFINED BENCH OR NOT DEFINED TRACESTATS OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "usage: cmake -DBENCH=... -DTRACESTATS=... -DWORKDIR=... -P slo_gate.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")

set(ARGS --seed=7 --files=120 --degrade-at-us=150000 --degrade-factor=15
    --slo=create:8ms:0.01 --expect-anomaly=fsync-stall)

foreach(run 1 2)
  file(MAKE_DIRECTORY "${WORKDIR}/run${run}")
  # Run 2 spells the dump dir with a redundant `/.` segment and a trailing
  # slash on purpose: ConfigureIncidents must normalize the path so the
  # dumps land in the same place and the metrics export (which embeds dump
  # basenames) stays byte-identical across invocation styles.
  if(run EQUAL 2)
    set(dumpdir "${WORKDIR}/run2/./")
  else()
    set(dumpdir "${WORKDIR}/run1")
  endif()
  # Signal-mode --profile rides along to prove wall-clock sampling does not
  # perturb the incident pipeline; prof.folded is nondeterministic by
  # design and excluded from the byte-compare below (DESIGN.md §14).
  execute_process(
    COMMAND "${BENCH}" ${ARGS}
      --flight-dump-dir=${dumpdir}
      --metrics-json=${WORKDIR}/run${run}/metrics.json
      --profile=${WORKDIR}/run${run}/prof.folded --profile-hz=997
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "run ${run} of ${BENCH} failed with exit code ${rc} "
      "(exit 1 = the expected fsync-stall anomaly did not fire)")
  endif()
endforeach()

# The anomaly timeline is sim-time only, so every dump and the embedded
# incident report must be byte-stable run to run.
file(GLOB dumps RELATIVE "${WORKDIR}/run1" "${WORKDIR}/run1/dump_*.json")
list(LENGTH dumps n_dumps)
if(n_dumps EQUAL 0)
  message(FATAL_ERROR "no flight-recorder dumps were written")
endif()
foreach(f ${dumps} metrics.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORKDIR}/run1/${f}" "${WORKDIR}/run2/${f}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${f} differs between two runs with --seed=7: the incident pipeline "
      "is no longer deterministic")
  endif()
endforeach()

# Root-cause check on the last dump (its window has settled into the slow
# regime): fsync must explain >= 50% of the mean-latency growth. --window
# widens the anomaly window so it spans whole ops, not just the one stalled
# journal batch.
list(SORT dumps)
list(GET dumps -1 last_dump)
execute_process(
  COMMAND "${TRACESTATS}" --explain-dump=${WORKDIR}/run1/${last_dump}
    --window=120000000 --expect=fsync:0.5
  OUTPUT_VARIABLE report
  RESULT_VARIABLE rc)
message(STATUS "tracestats --explain-dump on ${last_dump}:\n${report}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "tracestats --explain-dump did not attribute >=50% of the anomaly to "
    "fsync (exit ${rc})")
endif()
